/**
 * @file
 * Bounded lock-free single-producer / single-consumer queue.
 *
 * The parallel replay engine (sim/sharded_parallel.cpp) moves every
 * request of a sharded trace from one reader thread to one worker per
 * shard; with millions of requests per simulated day the hand-off is a
 * hot path, so the queue is a wait-free ring buffer: one atomic store
 * per push and per pop, indices on separate cache lines, and cached
 * peer positions so the common case touches no shared line at all
 * (the "fast forward" optimization of Rigtorp-style SPSC rings).
 *
 * Contract: exactly one thread calls tryPush/push/close (the producer)
 * and exactly one thread calls tryPop/pop (the consumer). Release
 * stores on the producer index publish the slot contents; acquire
 * loads on the consumer side observe them — this pairing is the whole
 * memory-ordering argument, and the tsan preset verifies it.
 *
 * The roles are also *capabilities* (util/thread_annotations.hpp):
 * every producer method REQUIRES(producer_role_) and every consumer
 * method REQUIRES(consumer_role_), with the role-private cached
 * indices GUARDED_BY the matching role. A thread claims its role by
 * calling assertProducerRole() / assertConsumerRole() once at the top
 * of its queue-touching scope — a TS_ASSERT no-op that tells Clang's
 * thread-safety analysis "this thread is the endpoint", after which
 * any cross-role access (a producer touching tail_cache, a consumer
 * calling push) is a compile error under -Wthread-safety.
 */

#ifndef SIEVESTORE_UTIL_SPSC_QUEUE_HPP
#define SIEVESTORE_UTIL_SPSC_QUEUE_HPP

#include <atomic>
#include <cstdint>
#include <thread>
#include <utility>
#include <vector>

#include "util/check.hpp"
#include "util/thread_annotations.hpp"

namespace sievestore {
namespace util {

/**
 * Fixed-capacity SPSC ring buffer. T must be default-constructible and
 * move-assignable. Capacity is rounded up to a power of two (minimum
 * 2) so wraparound is a mask, not a modulo.
 */
template <typename T>
class SpscQueue
{
  public:
    explicit SpscQueue(size_t min_capacity)
    {
        uint64_t cap = 2;
        while (cap < min_capacity)
            cap *= 2;
        slots.resize(static_cast<size_t>(cap));
        mask = cap - 1;
    }

    SpscQueue(const SpscQueue &) = delete;
    SpscQueue &operator=(const SpscQueue &) = delete;

    /** Usable capacity in items. */
    size_t capacity() const { return slots.size(); }

    /**
     * Claim the producer role for the calling thread's scope. The role
     * is conferred by construction (the SPSC contract), not acquired:
     * this compiles to nothing and exists so the thread-safety
     * analysis knows the caller is the producer endpoint. Call it once
     * at the top of each function that pushes or closes.
     */
    void assertProducerRole() const TS_ASSERT(producer_role_) {}

    /** Claim the consumer role (dual of assertProducerRole). */
    void assertConsumerRole() const TS_ASSERT(consumer_role_) {}

    /**
     * Producer: enqueue by move. Returns false (leaving `value`
     * untouched) when the ring is full.
     */
    bool
    tryPush(T &&value) REQUIRES(producer_role_)
    {
        const uint64_t t = tail.load(std::memory_order_relaxed);
        if (t - head_cache == capacity()) {
            head_cache = head.load(std::memory_order_acquire);
            if (t - head_cache == capacity())
                return false;
        }
        slots[static_cast<size_t>(t & mask)] = std::move(value);
        tail.store(t + 1, std::memory_order_release);
        return true;
    }

    /** Producer: enqueue by copy. */
    bool
    tryPush(const T &value) REQUIRES(producer_role_)
    {
        T copy = value;
        return tryPush(std::move(copy));
    }

    /**
     * Producer: fill the next slot in place via fn(T&) — for large
     * payloads where a staged copy plus a move would double the
     * hand-off cost (the parallel replay engine's batched items). The
     * slot may hold a stale previous value; fn must overwrite every
     * field it will publish. Returns false when the ring is full.
     */
    template <typename Fn>
    bool
    tryPushWith(Fn &&fn) REQUIRES(producer_role_)
    {
        const uint64_t t = tail.load(std::memory_order_relaxed);
        if (t - head_cache == capacity()) {
            head_cache = head.load(std::memory_order_acquire);
            if (t - head_cache == capacity())
                return false;
        }
        fn(slots[static_cast<size_t>(t & mask)]);
        tail.store(t + 1, std::memory_order_release);
        return true;
    }

    /**
     * Consumer: process the next slot in place via fn(const T&), then
     * release it to the producer — the zero-copy dual of
     * tryPushWith(). References into the slot must not escape fn.
     * Returns false when the queue is empty.
     */
    template <typename Fn>
    bool
    tryConsumeWith(Fn &&fn) REQUIRES(consumer_role_)
    {
        const uint64_t h = head.load(std::memory_order_relaxed);
        if (h == tail_cache) {
            tail_cache = tail.load(std::memory_order_acquire);
            if (h == tail_cache)
                return false;
        }
        fn(static_cast<const T &>(
            slots[static_cast<size_t>(h & mask)]));
        head.store(h + 1, std::memory_order_release);
        return true;
    }

    /** Consumer: dequeue into `out`. Returns false when empty. */
    bool
    tryPop(T &out) REQUIRES(consumer_role_)
    {
        const uint64_t h = head.load(std::memory_order_relaxed);
        if (h == tail_cache) {
            tail_cache = tail.load(std::memory_order_acquire);
            if (h == tail_cache)
                return false;
        }
        out = std::move(slots[static_cast<size_t>(h & mask)]);
        head.store(h + 1, std::memory_order_release);
        return true;
    }

    /**
     * Producer: mark the stream complete. No push may follow; pop
     * drains the remaining items and then reports end-of-stream.
     */
    void
    close() REQUIRES(producer_role_)
    {
        closed_.store(true, std::memory_order_release);
    }

    /** True once the producer has closed the queue (items may remain). */
    bool
    closed() const
    {
        return closed_.load(std::memory_order_acquire);
    }

    /**
     * Producer: blocking enqueue (spin-then-yield until space).
     * @pre the queue is not closed.
     */
    void
    push(T value) REQUIRES(producer_role_)
    {
        SIEVE_DCHECK(!closed(), "push after close");
        while (!tryPush(std::move(value)))
            backoff();
    }

    /** Producer: blocking in-place enqueue (see tryPushWith). */
    template <typename Fn>
    void
    pushWith(Fn &&fn) REQUIRES(producer_role_)
    {
        SIEVE_DCHECK(!closed(), "push after close");
        while (!tryPushWith(fn))
            backoff();
    }

    /**
     * Consumer: blocking dequeue. Returns false only when the queue is
     * closed *and* fully drained; otherwise waits for the producer.
     */
    bool
    pop(T &out) REQUIRES(consumer_role_)
    {
        for (;;) {
            if (tryPop(out))
                return true;
            if (closed()) {
                // Re-check: items pushed before close() may have become
                // visible only after the closed flag was observed.
                return tryPop(out);
            }
            backoff();
        }
    }

    /** Approximate occupancy (exact only when both sides are quiet). */
    size_t
    sizeApprox() const
    {
        const uint64_t t = tail.load(std::memory_order_acquire);
        const uint64_t h = head.load(std::memory_order_acquire);
        return static_cast<size_t>(t - h);
    }

    /** Footprint of the ring per the memoryBytes() convention. */
    uint64_t
    memoryBytes() const
    {
        return static_cast<uint64_t>(slots.capacity()) * sizeof(T);
    }

  private:
    static void backoff() { std::this_thread::yield(); }

    std::vector<T> slots;
    uint64_t mask = 0;

    /** Consumer position; written by the consumer only. */
    alignas(64) std::atomic<uint64_t> head{0};
    /** Producer's cached view of `head` (producer-private). */
    alignas(64) uint64_t head_cache GUARDED_BY(producer_role_) = 0;
    /** Producer position; written by the producer only. */
    alignas(64) std::atomic<uint64_t> tail{0};
    /** Consumer's cached view of `tail` (consumer-private). */
    alignas(64) uint64_t tail_cache GUARDED_BY(consumer_role_) = 0;
    alignas(64) std::atomic<bool> closed_{false};

    /** Pure capability tokens — see assertProducerRole(). */
    ThreadRole producer_role_;
    ThreadRole consumer_role_;
};

} // namespace util
} // namespace sievestore

#endif // SIEVESTORE_UTIL_SPSC_QUEUE_HPP
