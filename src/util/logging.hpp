/**
 * @file
 * Status-message and error-handling primitives.
 *
 * Follows the gem5 convention: fatal() is for user errors (bad
 * configuration, malformed input) and raises a recoverable exception;
 * panic() is for internal invariant violations and aborts. inform() and
 * warn() emit status messages and never stop execution.
 */

#ifndef SIEVESTORE_UTIL_LOGGING_HPP
#define SIEVESTORE_UTIL_LOGGING_HPP

#include <cstdarg>
#include <stdexcept>
#include <string>

namespace sievestore {
namespace util {

/**
 * Exception thrown by fatal() for conditions that are the user's fault
 * (bad configuration, invalid arguments, unreadable files).
 */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

/** Verbosity levels for status messages. */
enum class LogLevel { Quiet, Warn, Inform };

/** Set the global verbosity threshold (default: Inform). */
void setLogLevel(LogLevel level);

/** Current global verbosity threshold. */
LogLevel logLevel();

/**
 * Emit an informative message the user should know but not worry about.
 * printf-style formatting.
 */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Emit a warning: something might not behave as well as it could, but
 * execution continues.
 */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Report a user-caused error the program cannot continue past.
 * Throws FatalError; never returns.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an internal bug (a condition that should never happen
 * regardless of user input). Prints and aborts; never returns.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Format a printf-style message into a std::string. */
std::string vformat(const char *fmt, va_list ap);

} // namespace util
} // namespace sievestore

#endif // SIEVESTORE_UTIL_LOGGING_HPP
