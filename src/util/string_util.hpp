/**
 * @file
 * Small string utilities used by the CSV trace parser and table output.
 */

#ifndef SIEVESTORE_UTIL_STRING_UTIL_HPP
#define SIEVESTORE_UTIL_STRING_UTIL_HPP

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace sievestore {
namespace util {

/** Split a line on a delimiter; keeps empty fields. */
std::vector<std::string_view> splitView(std::string_view line, char delim);

/** Strip leading and trailing ASCII whitespace. */
std::string_view trimView(std::string_view sv);

/**
 * Parse an unsigned 64-bit integer.
 * @param sv  digits only (after trimming)
 * @param out parsed value
 * @retval true on success, false on empty/overflow/non-digit input
 */
bool parseU64(std::string_view sv, uint64_t &out);

/** Parse a double. @retval true on success. */
bool parseDouble(std::string_view sv, double &out);

/** ASCII lower-casing (locale independent). */
std::string toLower(std::string_view sv);

/** Render a byte count using binary units ("16.0 GiB"). */
std::string formatBytes(uint64_t bytes);

/** Render a count with thousands separators ("434,226,711"). */
std::string formatCount(uint64_t value);

} // namespace util
} // namespace sievestore

#endif // SIEVESTORE_UTIL_STRING_UTIL_HPP
