#include "storage/fault_backend.hpp"

#include "util/check.hpp"

namespace sievestore {
namespace storage {

FaultInjectingBackend::FaultInjectingBackend(
    std::unique_ptr<Backend> inner, FaultPlan plan)
    : inner_(std::move(inner)), plan_(plan)
{
    SIEVE_CHECK(inner_ != nullptr,
                "fault backend requires an inner backend");
}

bool
FaultInjectingBackend::shouldFail(const StorageOp &op,
                                  size_t index_in_batch,
                                  uint64_t seen,
                                  uint64_t every) const
{
    if (every != 0 && seen % every == 0)
        return true;
    if (plan_.reject_unaligned &&
        trace::blockNrOf(op.page) % trace::kBlocksPerPage != 0)
        return true;
    return plan_.fail_batch_from != 0 &&
           index_in_batch >= plan_.fail_batch_from;
}

void
FaultInjectingBackend::readBlocks(std::span<const StorageOp> ops,
                                  std::span<uint32_t> lat_ns)
{
    inner_->readBlocks(ops, lat_ns);
    for (size_t i = 0; i < ops.size(); ++i) {
        ++reads_seen_;
        if (shouldFail(ops[i], i, reads_seen_,
                       plan_.read_short_every)) {
            if (lat_ns[i] != kFailedOp)
                ++injected_;
            lat_ns[i] = kFailedOp;
        }
        if (lat_ns[i] == kFailedOp)
            noteReadError();
        else
            noteRead(lat_ns[i]);
    }
}

void
FaultInjectingBackend::writeBlocks(std::span<const StorageOp> ops,
                                   std::span<uint32_t> lat_ns)
{
    inner_->writeBlocks(ops, lat_ns);
    for (size_t i = 0; i < ops.size(); ++i) {
        ++writes_seen_;
        if (shouldFail(ops[i], i, writes_seen_,
                       plan_.write_enospc_every)) {
            if (lat_ns[i] != kFailedOp)
                ++injected_;
            lat_ns[i] = kFailedOp;
        }
        if (lat_ns[i] == kFailedOp)
            noteWriteError();
        else
            noteWrite(lat_ns[i]);
    }
}

void
FaultInjectingBackend::trimBlocks(std::span<const StorageOp> ops)
{
    inner_->trimBlocks(ops);
    Backend::trimBlocks(ops);
}

void
FaultInjectingBackend::flush()
{
    inner_->flush();
}

void
FaultInjectingBackend::checkInvariants() const
{
    Backend::checkInvariants();
    inner_->checkInvariants();
    SIEVE_CHECK(stats().read_errors + stats().write_errors >=
                    injected_,
                "injected faults exceed recorded errors");
}

} // namespace storage
} // namespace sievestore
