#include "storage/backend.hpp"

#include "storage/analytic_backend.hpp"
#include "storage/file_backend.hpp"
#include "util/check.hpp"

namespace sievestore {
namespace storage {

void
Backend::trimBlocks(std::span<const StorageOp> ops)
{
    stats_.trim_ops += ops.size();
}

void
Backend::flush()
{
}

void
Backend::checkInvariants() const
{
    uint64_t read_hist = 0, write_hist = 0;
    for (size_t b = 0; b < kLatencyBuckets; ++b) {
        read_hist += stats_.read_latency_log2[b];
        write_hist += stats_.write_latency_log2[b];
    }
    SIEVE_CHECK(read_hist == stats_.read_ops,
                "read histogram holds %llu ops but read_ops is %llu",
                static_cast<unsigned long long>(read_hist),
                static_cast<unsigned long long>(stats_.read_ops));
    SIEVE_CHECK(write_hist == stats_.write_ops,
                "write histogram holds %llu ops but write_ops is %llu",
                static_cast<unsigned long long>(write_hist),
                static_cast<unsigned long long>(stats_.write_ops));
}

void
Backend::noteRead(uint32_t lat_ns)
{
    ++stats_.read_ops;
    stats_.read_ns += lat_ns;
    ++stats_.read_latency_log2[latencyBucket(lat_ns)];
}

void
Backend::noteWrite(uint32_t lat_ns)
{
    ++stats_.write_ops;
    stats_.write_ns += lat_ns;
    ++stats_.write_latency_log2[latencyBucket(lat_ns)];
}

std::unique_ptr<Backend>
makeBackend(const BackendConfig &config, const ssd::SsdModel &ssd,
            uint64_t cache_blocks)
{
    if (config.factory)
        return config.factory();
    switch (config.kind) {
    case BackendKind::None:
        return nullptr;
    case BackendKind::Analytic:
        return std::make_unique<AnalyticBackend>(ssd);
    case BackendKind::File: {
        FileBackendConfig file = config.file;
        if (file.capacity_bytes == 0)
            file.capacity_bytes = cache_blocks * trace::kBlockBytes;
        return std::make_unique<FileBackend>(file);
    }
    }
    SIEVE_UNREACHABLE("invalid BackendKind");
}

} // namespace storage
} // namespace sievestore
