/**
 * @file
 * Fault-injecting Backend decorator for degradation testing.
 *
 * Wraps any Backend and deterministically overwrites selected per-op
 * results with kFailedOp, simulating the device failure modes a real
 * block store exhibits: short reads, ENOSPC on writes, rejected
 * unaligned requests, and a device dropping out mid-batch. The inner
 * backend still performs (and counts) its I/O; the decorator then
 * re-marks the chosen ops as failed in the caller-visible latency
 * span and keeps its own error counters, so tests can assert the
 * appliance degrades to the paper's no-cache path — reads fall
 * through to the ensemble, accounting stays consistent — instead of
 * crashing or corrupting state.
 *
 * All schedules are counter-based (fail every Nth op, fail from op K
 * of each batch), so runs are reproducible without a seed.
 */

#ifndef SIEVESTORE_STORAGE_FAULT_BACKEND_HPP
#define SIEVESTORE_STORAGE_FAULT_BACKEND_HPP

#include <memory>

#include "storage/backend.hpp"

namespace sievestore {
namespace storage {

/** Deterministic fault schedule. Zero-valued knobs are inactive. */
struct FaultPlan
{
    /** Fail every Nth read (1 = every read), as a short read. */
    uint64_t read_short_every = 0;
    /** Fail every Nth write (ENOSPC-style). */
    uint64_t write_enospc_every = 0;
    /** Treat ops whose page id is not 4 KB-unit-aligned as rejected
     * (an O_DIRECT device refusing an unaligned request). */
    bool reject_unaligned = true;
    /** Fail every op from index K onward within each batch (device
     * drops mid-batch); 0 disables. */
    uint64_t fail_batch_from = 0;
};

/** Backend decorator applying a FaultPlan (see file comment). */
class FaultInjectingBackend final : public Backend
{
  public:
    FaultInjectingBackend(std::unique_ptr<Backend> inner,
                          FaultPlan plan);

    const char *name() const override { return "fault"; }

    void readBlocks(std::span<const StorageOp> ops,
                    std::span<uint32_t> lat_ns) override;
    void writeBlocks(std::span<const StorageOp> ops,
                     std::span<uint32_t> lat_ns) override;
    void trimBlocks(std::span<const StorageOp> ops) override;
    void flush() override;

    void checkInvariants() const override;

    const Backend &inner() const { return *inner_; }
    /** Faults injected so far (reads + writes). */
    uint64_t injected() const { return injected_; }

  private:
    /** True when the plan fails op `i` of the current batch. */
    bool shouldFail(const StorageOp &op, size_t index_in_batch,
                    uint64_t seen, uint64_t every) const;

    std::unique_ptr<Backend> inner_;
    FaultPlan plan_;
    uint64_t reads_seen_ = 0;
    uint64_t writes_seen_ = 0;
    uint64_t injected_ = 0;
};

} // namespace storage
} // namespace sievestore

#endif // SIEVESTORE_STORAGE_FAULT_BACKEND_HPP
