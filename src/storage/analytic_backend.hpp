/**
 * @file
 * Model-echo backend: answers every op with the analytic SSD model's
 * service time.
 *
 * Wraps ssd::SsdModel accounting bit-for-bit: a 4 KB read costs
 * round(1e9 / read_iops) ns, a write round(1e9 / write_iops) ns —
 * the exact drive-seconds the paper's occupancy math charges,
 * expressed per op. Deterministic (no clock, no syscalls, no
 * allocation on the submit path), so replay totals are reproducible
 * and the measured columns it feeds into DailyReport equal the
 * model-predicted ones by construction. This is the differential
 * oracle the FileBackend is compared against.
 */

#ifndef SIEVESTORE_STORAGE_ANALYTIC_BACKEND_HPP
#define SIEVESTORE_STORAGE_ANALYTIC_BACKEND_HPP

#include "ssd/ssd_model.hpp"
#include "storage/backend.hpp"

namespace sievestore {
namespace storage {

/**
 * Service seconds -> whole nanoseconds, clamped into uint32_t
 * (4.29 s — far beyond any device service time). The one conversion
 * shared by the AnalyticBackend's answers and the report layer's
 * predicted-latency columns, so "measured == predicted under the
 * analytic backend" holds to the nanosecond by construction.
 */
uint32_t modelServiceNs(double seconds);

/** Deterministic Backend charging SsdModel service times. */
class AnalyticBackend final : public Backend
{
  public:
    explicit AnalyticBackend(const ssd::SsdModel &ssd);

    const char *name() const override { return "analytic"; }

    void readBlocks(std::span<const StorageOp> ops,
                    std::span<uint32_t> lat_ns) override;
    void writeBlocks(std::span<const StorageOp> ops,
                     std::span<uint32_t> lat_ns) override;

    /** Model service time for one 4 KB read, in nanoseconds. */
    uint32_t readServiceNs() const { return read_ns_; }
    /** Model service time for one 4 KB write, in nanoseconds. */
    uint32_t writeServiceNs() const { return write_ns_; }

  private:
    uint32_t read_ns_;
    uint32_t write_ns_;
};

} // namespace storage
} // namespace sievestore

#endif // SIEVESTORE_STORAGE_ANALYTIC_BACKEND_HPP
