/**
 * @file
 * Real block store: an O_DIRECT-aligned block file behind the cache.
 *
 * The store is a flat file of 4 KB slots addressed by a hash of the
 * op's page id (direct-mapped). Residency correctness lives in
 * cache::BlockCache — the appliance only ever reads pages it knows
 * are resident — so slot collisions change which bytes a read
 * returns, never what the simulation decides (the backend contract:
 * observation, not policy). What the file path measures is the real
 * device behavior of the access pattern: alignment, queue depth, and
 * per-op latency.
 *
 * Two submission engines:
 *
 *  - worker pool (always built): N threads draining a shared batch
 *    through pread/pwrite on 4 KB-aligned per-thread buffers, the
 *    submitting thread participating. workers=0 degrades to a fully
 *    synchronous loop on the caller — the fallback CI exercises even
 *    on io_uring-capable hosts (SIEVE_STORAGE_ENGINE=sync).
 *  - io_uring (when liburing is found at configure time and the
 *    kernel accepts ring setup): batches are submitted ring_depth at
 *    a time from the calling thread.
 *
 * Setup (file creation, buffer allocation, thread/ring start) is the
 * only SIEVE_MAY_ALLOC surface; the submit paths are allocation-free
 * so the appliance's batch-level AllocGuard regions stay armed
 * across a drain.
 */

#ifndef SIEVESTORE_STORAGE_FILE_BACKEND_HPP
#define SIEVESTORE_STORAGE_FILE_BACKEND_HPP

#include <condition_variable>
#include <thread>
#include <vector>

#include "storage/backend.hpp"
#include "util/check.hpp"
#include "util/thread_annotations.hpp"

namespace sievestore {
namespace storage {

/** O_DIRECT block-file Backend (see file comment). */
class FileBackend final : public Backend
{
  public:
    /** Opens (or creates) the store and starts the engine.
     * SIEVE_MAY_ALLOC: all allocation happens here, before any
     * appliance no-alloc region can reach the backend. */
    SIEVE_MAY_ALLOC explicit FileBackend(const FileBackendConfig &config);
    ~FileBackend() override;

    FileBackend(const FileBackend &) = delete;
    FileBackend &operator=(const FileBackend &) = delete;

    const char *name() const override { return "file"; }

    void readBlocks(std::span<const StorageOp> ops,
                    std::span<uint32_t> lat_ns) override;
    void writeBlocks(std::span<const StorageOp> ops,
                     std::span<uint32_t> lat_ns) override;
    void flush() override;

    void checkInvariants() const override;

    /** Number of 4 KB slots in the store. */
    uint64_t slots() const { return slots_; }
    /** Worker threads serving the pool engine (0 = caller-inline). */
    size_t workerThreads() const { return threads_.size(); }

  private:
    /** Dispatch a batch through the active engine, then fold the
     * per-op results into the stats counters. */
    void run(std::span<const StorageOp> ops, std::span<uint32_t> lat_ns,
             bool is_write);
    /** Worker-pool engine: publish the batch, participate, wait. */
    void runPool(std::span<const StorageOp> ops,
                 std::span<uint32_t> lat_ns, bool is_write);
    /** Claim-and-serve loop shared by workers and the submitter. */
    void serveClaims(void *buf);
    /** Worker thread body. */
    void workerLoop(void *buf);
    /** One 4 KB op on `buf`; returns latency ns or kFailedOp. */
    uint32_t doRead(const StorageOp &op, void *buf);
    uint32_t doWrite(const StorageOp &op, void *buf);
    /** Byte offset of the op's direct-mapped slot. */
    uint64_t slotOffset(const StorageOp &op) const;

#ifdef SIEVE_HAVE_LIBURING
    /** io_uring engine: submit up to ring_depth ops per wave. */
    void runUring(std::span<const StorageOp> ops,
                  std::span<uint32_t> lat_ns, bool is_write);
    bool initUring(unsigned depth);
    void *uring_ = nullptr; ///< struct io_uring, opaque here
    unsigned ring_depth_ = 0;
    char *ring_bufs_ = nullptr; ///< ring_depth 4 KB aligned buffers
#endif

    int fd_ = -1;
    uint64_t slots_ = 0;
    bool use_uring_ = false;

    /** Submitter's own aligned 4 KB buffer (pool + sync engines). */
    void *submit_buf_ = nullptr;

    // Worker-pool state: one batch is in flight at a time (the
    // appliance drains synchronously); the submitter publishes it
    // under mu_ and every participant claims op indices under mu_
    // (the 4 KB syscall dominates, so the lock is never contended
    // for long). See sim/sharded_parallel.cpp DayBarrier for the
    // Mutex/condition_variable_any idiom.
    util::Mutex mu_;
    std::condition_variable_any work_cv_;
    std::condition_variable_any done_cv_;
    uint64_t batch_seq_ GUARDED_BY(mu_) = 0;
    const StorageOp *job_ops_ GUARDED_BY(mu_) = nullptr;
    uint32_t *job_lat_ GUARDED_BY(mu_) = nullptr;
    size_t job_count_ GUARDED_BY(mu_) = 0;
    size_t job_next_ GUARDED_BY(mu_) = 0;
    size_t job_done_ GUARDED_BY(mu_) = 0;
    bool job_write_ GUARDED_BY(mu_) = false;
    bool stopping_ GUARDED_BY(mu_) = false;

    std::vector<std::thread> threads_;
    std::vector<void *> worker_bufs_;
};

} // namespace storage
} // namespace sievestore

#endif // SIEVESTORE_STORAGE_FILE_BACKEND_HPP
