/**
 * @file
 * Pluggable storage backend behind the analytic SSD model.
 *
 * The appliance charges SSD cost analytically (ssd::SsdModel) — that
 * accounting is the paper's oracle and is never altered by this
 * layer. A Backend is an *observation* channel: every 4 KB I/O unit
 * the model charges is also emitted as a StorageOp and drained
 * through the configured backend in batches mirroring the request
 * path's batch shapes. The AnalyticBackend answers with the model's
 * own service times (bit-deterministic, no syscalls); the
 * FileBackend performs real O_DIRECT block I/O and reports measured
 * latencies. Divergence between the two on the same trace is the
 * model-validation signal (sim::runStorageDifferential).
 *
 * Contract: backends observe, they never decide. No sieve, cache, or
 * eviction decision may depend on a backend's answer — the
 * differential suite pins model-side DailyReport fields bit-identical
 * across backends.
 */

#ifndef SIEVESTORE_STORAGE_BACKEND_HPP
#define SIEVESTORE_STORAGE_BACKEND_HPP

#include <array>
#include <bit>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>

#include "ssd/ssd_model.hpp"
#include "trace/block.hpp"
#include "util/flow_annotations.hpp"
#include "util/sim_time.hpp"

namespace sievestore {
namespace storage {

/**
 * One 4 KB device I/O unit, as charged by the appliance's
 * page-coalescing accounting. `page` is the BlockId of the unit's
 * first 512-byte block (trace::pageStart); `time` is the simulated
 * timestamp the model charged the I/O to, used to attribute the
 * measured result to the right DailyReport day.
 */
struct StorageOp
{
    util::TimeUs time;
    trace::BlockId page;
};

/**
 * Sentinel latency marking a failed op (short read/write, I/O error,
 * injected fault). The appliance counts it as a storage error and
 * degrades to the no-cache path for that I/O — the request was
 * already served by the model, so a device failure changes
 * observation counters only, never accounting or policy.
 */
inline constexpr uint32_t kFailedOp = UINT32_MAX;

/** log2-bucketed latency histogram width: bucket = bit_width(ns),
 * so bucket 0 holds 0 ns and bucket 32 holds >= 2^31 ns. */
inline constexpr size_t kLatencyBuckets = 33;

/** Histogram bucket for a per-op latency in nanoseconds. */
inline constexpr size_t
latencyBucket(uint32_t ns)
{
    return static_cast<size_t>(std::bit_width(ns));
}

/** Cumulative backend counters (whole-run; per-day attribution lives
 * in core::DailyReport). */
struct BackendStats
{
    /** True when the data path opened its file with O_DIRECT. */
    bool direct_io = false;
    /** True when the io_uring submission path is active. */
    bool io_uring = false;
    // Every counter below is device-observed (sieve-flow taint
    // source): reads of these fields carry measured taint and may
    // reach reports only, never a sieve/cache/eviction decision.
    SIEVE_TAINT_SOURCE uint64_t read_ops = 0;  ///< 4 KB reads OK
    SIEVE_TAINT_SOURCE uint64_t write_ops = 0; ///< 4 KB writes OK
    SIEVE_TAINT_SOURCE uint64_t trim_ops = 0;  ///< eviction trims
    SIEVE_TAINT_SOURCE uint64_t read_errors = 0;
    SIEVE_TAINT_SOURCE uint64_t write_errors = 0;
    /** Total measured read latency, ns. */
    SIEVE_TAINT_SOURCE uint64_t read_ns = 0;
    /** Total measured write latency, ns. */
    SIEVE_TAINT_SOURCE uint64_t write_ns = 0;
    SIEVE_TAINT_SOURCE std::array<uint64_t, kLatencyBuckets>
        read_latency_log2{};
    SIEVE_TAINT_SOURCE std::array<uint64_t, kLatencyBuckets>
        write_latency_log2{};
};

/**
 * Batch-shaped storage engine interface. Latency spans are filled
 * per op in nanoseconds, kFailedOp marking failures; `lat_ns` must
 * be at least as long as `ops`. The submit paths are allocation-free
 * (enforced transitively by the appliance's batch-level AllocGuard
 * regions); SIEVE_MAY_ALLOC setup happens at construction only.
 */
class Backend
{
  public:
    virtual ~Backend() = default;

    /** Engine name ("analytic", "file", ...). */
    virtual const char *name() const = 0;

    /** Read a batch of 4 KB units. Taint source: the filled
     * `lat_ns` span is measured device data. */
    virtual SIEVE_TAINT_SOURCE void
    readBlocks(std::span<const StorageOp> ops,
               std::span<uint32_t> lat_ns) = 0;

    /** Write a batch of 4 KB units. Taint source: the filled
     * `lat_ns` span is measured device data. */
    virtual SIEVE_TAINT_SOURCE void
    writeBlocks(std::span<const StorageOp> ops,
                std::span<uint32_t> lat_ns) = 0;

    /** Note evicted 4 KB units (default: count only). */
    virtual void trimBlocks(std::span<const StorageOp> ops);

    /** Flush any device-side buffering (default: no-op). */
    virtual void flush();

    /** Taint source: measured counters and histograms. */
    SIEVE_TAINT_SOURCE const BackendStats &stats() const
    {
        return stats_;
    }

    /** Audit internal consistency; aborts on violation. */
    virtual void checkInvariants() const;

  protected:
    /** Fold one completed read/write into the counters. */
    void noteRead(uint32_t lat_ns);
    void noteWrite(uint32_t lat_ns);
    void noteReadError() { ++stats_.read_errors; }
    void noteWriteError() { ++stats_.write_errors; }

    BackendStats stats_;
};

/** Engine selection for ApplianceConfig::backend. */
enum class BackendKind
{
    /** No backend: the appliance skips op emission entirely. */
    None,
    /** Model-echo backend: deterministic SsdModel service times. */
    Analytic,
    /** Real block file: O_DIRECT + worker pool (or io_uring). */
    File,
};

/** FileBackend knobs (see file_backend.hpp for semantics). */
struct FileBackendConfig
{
    /** Backing file path; empty creates an unlinked temp file under
     * $TMPDIR (or /tmp). */
    std::string path;
    /** Store size in bytes; 0 derives it from the cache capacity. */
    uint64_t capacity_bytes = 0;
    /** I/O worker threads; 0 runs every op on the submitting
     * thread (the always-built fallback path). */
    unsigned workers = 2;
    /** Submission engine. Auto prefers io_uring when the build and
     * kernel support it, else the worker pool. The environment
     * variable SIEVE_STORAGE_ENGINE=sync|uring|auto overrides. */
    enum class Engine
    {
        Auto,
        Uring,
        Sync
    } engine = Engine::Auto;
    /** io_uring submission-queue depth. */
    unsigned ring_depth = 64;
};

/** Backend selection carried by core::ApplianceConfig. */
struct BackendConfig
{
#if defined(SIEVE_STORAGE_DEFAULT_FILE)
    BackendKind kind = BackendKind::File;
#elif defined(SIEVE_STORAGE_DEFAULT_NONE)
    BackendKind kind = BackendKind::None;
#else
    BackendKind kind = BackendKind::Analytic;
#endif
    FileBackendConfig file;
    /**
     * Custom backend factory; when set it overrides `kind`. Mirrors
     * ApplianceConfig::replacement/allocation — the fault-injection
     * tests use it to wrap a real engine in a decorator.
     */
    std::function<std::unique_ptr<Backend>()> factory;
};

/**
 * Backend factory. Returns null for BackendKind::None. `ssd` feeds
 * the AnalyticBackend's service times; `cache_blocks` sizes the
 * FileBackend's store when the config leaves capacity_bytes at 0.
 */
std::unique_ptr<Backend> makeBackend(const BackendConfig &config,
                                     const ssd::SsdModel &ssd,
                                     uint64_t cache_blocks);

} // namespace storage
} // namespace sievestore

#endif // SIEVESTORE_STORAGE_BACKEND_HPP
