#include "storage/analytic_backend.hpp"

#include <cmath>

#include "util/check.hpp"

namespace sievestore {
namespace storage {

uint32_t
modelServiceNs(double seconds)
{
    if (!(seconds > 0.0))
        return 0;
    const double ns = std::llround(seconds * 1e9) < 0
                          ? 0.0
                          : static_cast<double>(
                                std::llround(seconds * 1e9));
    return ns >= static_cast<double>(UINT32_MAX)
               ? UINT32_MAX - 1
               : static_cast<uint32_t>(ns);
}

AnalyticBackend::AnalyticBackend(const ssd::SsdModel &ssd)
    : read_ns_(modelServiceNs(ssd.readService())),
      write_ns_(modelServiceNs(ssd.writeService()))
{
    SIEVE_CHECK(ssd.read_iops > 0.0 && ssd.write_iops > 0.0,
                "AnalyticBackend needs positive IOPS ratings");
}

void
AnalyticBackend::readBlocks(std::span<const StorageOp> ops,
                            std::span<uint32_t> lat_ns)
{
    for (size_t i = 0; i < ops.size(); ++i) {
        lat_ns[i] = read_ns_;
        noteRead(read_ns_);
    }
}

void
AnalyticBackend::writeBlocks(std::span<const StorageOp> ops,
                             std::span<uint32_t> lat_ns)
{
    for (size_t i = 0; i < ops.size(); ++i) {
        lat_ns[i] = write_ns_;
        noteWrite(write_ns_);
    }
}

} // namespace storage
} // namespace sievestore
