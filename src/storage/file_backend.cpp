#include "storage/file_backend.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

#ifdef SIEVE_HAVE_LIBURING
#include <liburing.h>
#endif

#include "util/flow_annotations.hpp"
#include "util/hashing.hpp"
#include "util/logging.hpp"

namespace sievestore {
namespace storage {

namespace {

/**
 * Monotonic nanosecond clock for measured device latency. This is
 * the one sanctioned wall-clock read outside bench/: latencies are
 * observation columns (DailyReport storage_*_ns), never inputs to a
 * sieve/cache decision, so seeded replay reproducibility of every
 * model-side field is unaffected.
 */
SIEVE_TAINT_SOURCE uint64_t
nowNs()
{
    // Measured-latency observation column, never a policy input:
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            // sieve-analyze: allow(determinism) // sieve-lint: allow(wall-clock)
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/** Elapsed ns -> per-op latency, kept clear of the failure sentinel. */
uint32_t
clampLatency(uint64_t ns)
{
    return ns >= kFailedOp ? kFailedOp - 1
                           : static_cast<uint32_t>(ns);
}

/** Open `path` for block I/O, preferring O_DIRECT; falls back to
 * buffered I/O where the filesystem rejects it (tmpfs). */
int
openStore(const char *path, bool *direct_io)
{
    int fd = ::open(path, O_RDWR | O_CREAT | O_CLOEXEC | O_DIRECT,
                    0600);
    if (fd >= 0) {
        *direct_io = true;
        return fd;
    }
    fd = ::open(path, O_RDWR | O_CREAT | O_CLOEXEC, 0600);
    *direct_io = false;
    return fd;
}

/** One 4 KB-aligned, zero-filled I/O buffer (O_DIRECT requires the
 * memory alignment even when the open fell back to buffered). */
void *
allocAligned()
{
    void *buf = nullptr;
    if (posix_memalign(&buf, trace::kPageBytes, trace::kPageBytes) != 0)
        util::fatal("posix_memalign(4096) failed");
    std::memset(buf, 0, trace::kPageBytes);
    return buf;
}

/** Engine requested after the SIEVE_STORAGE_ENGINE override. */
FileBackendConfig::Engine
resolveEngine(FileBackendConfig::Engine configured)
{
    const char *env = std::getenv("SIEVE_STORAGE_ENGINE");
    if (env == nullptr)
        return configured;
    if (std::strcmp(env, "sync") == 0)
        return FileBackendConfig::Engine::Sync;
    if (std::strcmp(env, "uring") == 0)
        return FileBackendConfig::Engine::Uring;
    return FileBackendConfig::Engine::Auto;
}

} // namespace

FileBackend::FileBackend(const FileBackendConfig &config)
{
    // --- store file ---------------------------------------------------
    std::string path = config.path;
    bool temp = path.empty();
    if (temp) {
        const char *dir = std::getenv("TMPDIR");
        path = std::string(dir && *dir ? dir : "/tmp") +
               "/sievestore-store-XXXXXX";
        const int tfd = mkstemp(path.data());
        if (tfd < 0)
            util::fatal("mkstemp(%s) failed: %s", path.c_str(),
                        std::strerror(errno));
        ::close(tfd);
    }
    fd_ = openStore(path.c_str(), &stats_.direct_io);
    if (fd_ < 0)
        util::fatal("open(%s) failed: %s", path.c_str(),
                    std::strerror(errno));
    if (temp)
        ::unlink(path.c_str()); // anonymous once every fd closes

    slots_ = std::max<uint64_t>(
        1, config.capacity_bytes / trace::kPageBytes);
    if (::ftruncate(fd_, static_cast<off_t>(slots_ *
                                            trace::kPageBytes)) != 0)
        util::fatal("ftruncate(%llu slots) failed: %s",
                    static_cast<unsigned long long>(slots_),
                    std::strerror(errno));

    // --- engine -------------------------------------------------------
    const FileBackendConfig::Engine engine =
        resolveEngine(config.engine);
#ifdef SIEVE_HAVE_LIBURING
    if (engine != FileBackendConfig::Engine::Sync)
        use_uring_ = initUring(std::max(1u, config.ring_depth));
#endif
    stats_.io_uring = use_uring_;
    if (engine == FileBackendConfig::Engine::Uring && !use_uring_)
        util::warn("storage: io_uring requested but unavailable; "
                   "using the worker-pool fallback");

    submit_buf_ = allocAligned();
    if (!use_uring_) {
        const unsigned n = std::min(config.workers, 8u);
        threads_.reserve(n);
        worker_bufs_.reserve(n);
        for (unsigned i = 0; i < n; ++i) {
            void *buf = allocAligned();
            worker_bufs_.push_back(buf);
            threads_.emplace_back(
                [this, buf]() { workerLoop(buf); });
        }
    }
}

FileBackend::~FileBackend()
{
    {
        util::MutexLock lock(mu_);
        stopping_ = true;
    }
    work_cv_.notify_all();
    for (std::thread &t : threads_)
        t.join();
    for (void *buf : worker_bufs_)
        std::free(buf);
    std::free(submit_buf_);
#ifdef SIEVE_HAVE_LIBURING
    if (uring_ != nullptr) {
        io_uring_queue_exit(static_cast<struct io_uring *>(uring_));
        delete static_cast<struct io_uring *>(uring_);
        std::free(ring_bufs_);
    }
#endif
    if (fd_ >= 0)
        ::close(fd_);
}

uint64_t
FileBackend::slotOffset(const StorageOp &op) const
{
    // Direct-mapped: hash the page id into a slot. Collisions only
    // alias store bytes (see the file comment); the access pattern
    // and per-op cost — what this backend measures — are preserved.
    const uint64_t slot =
        util::reduceRange(util::mix64(op.page), slots_);
    return slot * trace::kPageBytes;
}

uint32_t
FileBackend::doRead(const StorageOp &op, void *buf)
{
    const uint64_t t0 = nowNs();
    const ssize_t got =
        ::pread(fd_, buf, trace::kPageBytes,
                static_cast<off_t>(slotOffset(op)));
    if (got != static_cast<ssize_t>(trace::kPageBytes))
        return kFailedOp; // short read or errno: degrade, don't abort
    return clampLatency(nowNs() - t0);
}

uint32_t
FileBackend::doWrite(const StorageOp &op, void *buf)
{
    const uint64_t t0 = nowNs();
    const ssize_t put =
        ::pwrite(fd_, buf, trace::kPageBytes,
                 static_cast<off_t>(slotOffset(op)));
    if (put != static_cast<ssize_t>(trace::kPageBytes))
        return kFailedOp; // ENOSPC and friends: degrade, don't abort
    return clampLatency(nowNs() - t0);
}

void
FileBackend::serveClaims(void *buf)
{
    for (;;) {
        const StorageOp *ops;
        uint32_t *lat;
        bool is_write;
        size_t i;
        {
            util::MutexLock lock(mu_);
            if (job_next_ >= job_count_)
                return;
            i = job_next_++;
            ops = job_ops_;
            lat = job_lat_;
            is_write = job_write_;
        }
        lat[i] = is_write ? doWrite(ops[i], buf)
                          : doRead(ops[i], buf);
        {
            util::MutexLock lock(mu_);
            ++job_done_;
            if (job_done_ == job_count_)
                done_cv_.notify_all();
        }
    }
}

void
FileBackend::workerLoop(void *buf)
{
    uint64_t seen = 0;
    for (;;) {
        {
            util::MutexLock lock(mu_);
            work_cv_.wait(lock, [&]() REQUIRES(mu_) {
                return stopping_ || batch_seq_ != seen;
            });
            if (stopping_)
                return;
            seen = batch_seq_;
        }
        serveClaims(buf);
    }
}

void
FileBackend::runPool(std::span<const StorageOp> ops,
                     std::span<uint32_t> lat_ns, bool is_write)
{
    {
        util::MutexLock lock(mu_);
        job_ops_ = ops.data();
        job_lat_ = lat_ns.data();
        job_count_ = ops.size();
        job_next_ = 0;
        job_done_ = 0;
        job_write_ = is_write;
        ++batch_seq_;
    }
    work_cv_.notify_all();
    serveClaims(submit_buf_); // the submitter participates
    util::MutexLock lock(mu_);
    done_cv_.wait(lock, [&]() REQUIRES(mu_) {
        return job_done_ == job_count_;
    });
    job_ops_ = nullptr;
    job_lat_ = nullptr;
}

void
FileBackend::run(std::span<const StorageOp> ops,
                 std::span<uint32_t> lat_ns, bool is_write)
{
    if (ops.empty())
        return;
#ifdef SIEVE_HAVE_LIBURING
    if (use_uring_) {
        runUring(ops, lat_ns, is_write);
    } else
#endif
        if (threads_.empty()) {
        // Fully synchronous fallback (workers = 0): every op on the
        // calling thread. Always built, exercised by CI via
        // SIEVE_STORAGE_ENGINE=sync + workers=0 configs.
        for (size_t i = 0; i < ops.size(); ++i)
            lat_ns[i] = is_write ? doWrite(ops[i], submit_buf_)
                                 : doRead(ops[i], submit_buf_);
    } else {
        runPool(ops, lat_ns, is_write);
    }
    for (size_t i = 0; i < ops.size(); ++i) {
        if (is_write) {
            if (lat_ns[i] == kFailedOp)
                noteWriteError();
            else
                noteWrite(lat_ns[i]);
        } else {
            if (lat_ns[i] == kFailedOp)
                noteReadError();
            else
                noteRead(lat_ns[i]);
        }
    }
}

void
FileBackend::readBlocks(std::span<const StorageOp> ops,
                        std::span<uint32_t> lat_ns)
{
    run(ops, lat_ns, false);
}

void
FileBackend::writeBlocks(std::span<const StorageOp> ops,
                         std::span<uint32_t> lat_ns)
{
    run(ops, lat_ns, true);
}

void
FileBackend::flush()
{
    if (fd_ >= 0)
        ::fsync(fd_);
}

void
FileBackend::checkInvariants() const
{
    Backend::checkInvariants();
    SIEVE_CHECK(fd_ >= 0, "file backend lost its store fd");
    SIEVE_CHECK(slots_ > 0, "file backend has a zero-slot store");
    SIEVE_CHECK(threads_.size() == worker_bufs_.size(),
                "%zu worker threads but %zu worker buffers",
                threads_.size(), worker_bufs_.size());
}

#ifdef SIEVE_HAVE_LIBURING

SIEVE_MAY_ALLOC bool
FileBackend::initUring(unsigned depth)
{
    auto *ring = new struct io_uring;
    if (io_uring_queue_init(depth, ring, 0) < 0) {
        // Kernel without io_uring (or seccomp-filtered): fall back.
        delete ring;
        return false;
    }
    void *bufs = nullptr;
    if (posix_memalign(&bufs, trace::kPageBytes,
                       static_cast<size_t>(depth) *
                           trace::kPageBytes) != 0) {
        io_uring_queue_exit(ring);
        delete ring;
        return false;
    }
    std::memset(bufs, 0,
                static_cast<size_t>(depth) * trace::kPageBytes);
    uring_ = ring;
    ring_depth_ = depth;
    ring_bufs_ = static_cast<char *>(bufs);
    return true;
}

void
FileBackend::runUring(std::span<const StorageOp> ops,
                      std::span<uint32_t> lat_ns, bool is_write)
{
    auto *ring = static_cast<struct io_uring *>(uring_);
    for (size_t base = 0; base < ops.size();
         base += ring_depth_) {
        const unsigned n = static_cast<unsigned>(std::min<size_t>(
            ring_depth_, ops.size() - base));
        // Pre-fail the wave; successful completions overwrite, so a
        // lost sqe or unreaped cqe is counted as an error, not junk.
        for (unsigned i = 0; i < n; ++i)
            lat_ns[base + i] = kFailedOp;
        const uint64_t t0 = nowNs();
        unsigned queued = 0;
        for (unsigned i = 0; i < n; ++i) {
            struct io_uring_sqe *sqe = io_uring_get_sqe(ring);
            if (sqe == nullptr)
                continue; // SQ unexpectedly full: op stays failed
            char *buf = ring_bufs_ +
                        static_cast<size_t>(i) * trace::kPageBytes;
            const auto off = static_cast<uint64_t>(
                slotOffset(ops[base + i]));
            if (is_write)
                io_uring_prep_write(sqe, fd_, buf,
                                    trace::kPageBytes, off);
            else
                io_uring_prep_read(sqe, fd_, buf,
                                   trace::kPageBytes, off);
            io_uring_sqe_set_data64(sqe, base + i);
            ++queued;
        }
        const int submitted =
            io_uring_submit_and_wait(ring, queued);
        for (int k = 0; k < submitted; ++k) {
            struct io_uring_cqe *cqe = nullptr;
            if (io_uring_wait_cqe(ring, &cqe) < 0 || cqe == nullptr)
                break;
            const uint64_t idx = io_uring_cqe_get_data64(cqe);
            if (idx >= base && idx < base + n &&
                cqe->res == static_cast<int>(trace::kPageBytes))
                lat_ns[idx] = clampLatency(nowNs() - t0);
            io_uring_cqe_seen(ring, cqe);
        }
    }
}

#endif // SIEVE_HAVE_LIBURING

} // namespace storage
} // namespace sievestore
