/**
 * @file
 * Umbrella header: the whole SieveStore public API.
 *
 * Fine-grained headers remain the preferred includes for library code;
 * this header exists for quick experiments and downstream prototypes.
 */

#ifndef SIEVESTORE_SIEVESTORE_HPP
#define SIEVESTORE_SIEVESTORE_HPP

// util: primitives
#include "util/flat_index.hpp"
#include "util/footprint.hpp"
#include "util/hashing.hpp"
#include "util/logging.hpp"
#include "util/random.hpp"
#include "util/sim_time.hpp"
#include "util/string_util.hpp"

// stats: reporting
#include "stats/histogram.hpp"
#include "stats/table.hpp"

// trace: workloads
#include "trace/binary_trace.hpp"
#include "trace/block.hpp"
#include "trace/ensemble.hpp"
#include "trace/expand.hpp"
#include "trace/merge.hpp"
#include "trace/msr_csv.hpp"
#include "trace/request.hpp"
#include "trace/synthetic.hpp"
#include "trace/trace_reader.hpp"
#include "trace/trace_stats.hpp"

// analysis: trace characterization + offline counting
#include "analysis/access_counter.hpp"
#include "analysis/access_log.hpp"
#include "analysis/popularity.hpp"
#include "analysis/skew.hpp"

// ssd: device models and cost accounting
#include "ssd/hdd_model.hpp"
#include "ssd/network.hpp"
#include "ssd/occupancy.hpp"
#include "ssd/ssd_model.hpp"

// storage: pluggable device backends behind the analytic model
#include "storage/analytic_backend.hpp"
#include "storage/backend.hpp"
#include "storage/fault_backend.hpp"
#include "storage/file_backend.hpp"

// cache: the block-cache substrate
#include "cache/belady.hpp"
#include "cache/block_cache.hpp"
#include "cache/replacement.hpp"

// core: SieveStore itself
#include "core/alloc_policy.hpp"
#include "core/appliance.hpp"
#include "core/auto_tune.hpp"
#include "core/discrete.hpp"
#include "core/imct.hpp"
#include "core/mct.hpp"
#include "core/rand_sieve.hpp"
#include "core/sieve_spec.hpp"
#include "core/sievestore_c.hpp"
#include "core/unsieved.hpp"
#include "core/windowed_counter.hpp"

// sim: experiment drivers
#include "sim/analytic.hpp"
#include "sim/batch.hpp"
#include "sim/driver.hpp"
#include "sim/experiment.hpp"
#include "sim/per_server.hpp"
#include "sim/sharded.hpp"
#include "sim/storage_diff.hpp"

#endif // SIEVESTORE_SIEVESTORE_HPP
