/**
 * @file
 * Per-server caching configurations (Section 5.3, quadrants III/IV).
 *
 * The paper compares SieveStore's ensemble-level cache against idealized
 * per-server caching: (a) an iso-capacity configuration under an
 * "elastic SSD" assumption, where each server's private cache is sized
 * to exactly hold the top 1 % of its own accessed blocks, and (b)
 * fixed-size private SSDs per server. Because the hot set migrates
 * across servers (O2), static partitions strand capacity on servers
 * with few hot blocks; these simulators quantify that.
 */

#ifndef SIEVESTORE_SIM_PER_SERVER_HPP
#define SIEVESTORE_SIM_PER_SERVER_HPP

#include <vector>

#include "sim/experiment.hpp"
#include "trace/trace_reader.hpp"

namespace sievestore {
namespace sim {

/** Configuration for a per-server caching simulation. */
struct PerServerConfig
{
    /** Private cache capacity per server, in 512-byte blocks. */
    std::vector<uint64_t> capacities_blocks;
    /** Allocation policy instantiated independently per server. */
    PolicyConfig policy;
    /** Appliance template (cache_blocks is overridden per server). */
    core::ApplianceConfig base;
    /** Requests per replay batch (see sim/batch.hpp); results are
     * independent of this value. */
    size_t batch = trace::kDefaultBatchRequests;
};

/** Outcome of a per-server simulation. */
struct PerServerResult
{
    /** Daily reports per server ([server][day]). */
    std::vector<std::vector<core::DailyReport>> per_server;
    /** Reports summed across servers, by day. */
    std::vector<core::DailyReport> combined;
    /** Sum of private capacities, in blocks. */
    uint64_t total_capacity_blocks = 0;
};

/**
 * Replay a trace through one private appliance per server. Day
 * boundaries fire on every appliance (a server idle across a boundary
 * still advances its epoch).
 */
PerServerResult runPerServer(trace::TraceReader &reader,
                             const PerServerConfig &config);

/**
 * Profiling pass for the elastic iso-capacity configuration: for each
 * server, the maximum over days of ceil(fraction x that day's unique
 * blocks) — the smallest private cache that could hold the server's
 * daily top-fraction set every day.
 */
std::vector<uint64_t>
elasticTopPercentCapacities(trace::TraceReader &reader, size_t servers,
                            double fraction = 0.01);

} // namespace sim
} // namespace sievestore

#endif // SIEVESTORE_SIM_PER_SERVER_HPP
