#include "sim/analytic.hpp"

#include "util/logging.hpp"

namespace sievestore {
namespace sim {

Table2Row
table2Row(Table2Policy policy, double hit_rate, double read_frac,
          double isa_eps)
{
    if (hit_rate < 0.0 || hit_rate > 1.0)
        util::fatal("hit rate must be in [0, 1]");
    if (read_frac < 0.0 || read_frac > 1.0)
        util::fatal("read fraction must be in [0, 1]");

    Table2Row row;
    row.hits = hit_rate;
    row.misses = 1.0 - hit_rate;
    row.read_hits = hit_rate * read_frac;
    const double write_hits = hit_rate * (1.0 - read_frac);

    switch (policy) {
      case Table2Policy::AOD:
        // Every miss is an allocation-write.
        row.alloc_writes = row.misses;
        break;
      case Table2Policy::WMNA:
        // Only read misses allocate.
        row.alloc_writes = row.misses * read_frac;
        break;
      case Table2Policy::ISA:
        // Exactly the top blocks, once: epsilon of accesses.
        row.alloc_writes = isa_eps;
        break;
    }
    row.write_ops = write_hits + row.alloc_writes;
    row.ssd_ops = row.read_hits + row.write_ops;
    return row;
}

} // namespace sim
} // namespace sievestore
