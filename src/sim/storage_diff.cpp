#include "sim/storage_diff.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace sievestore {
namespace sim {

namespace {

/**
 * The bit-identity contract: everything the model decides or charges,
 * plus the storage op/error *counts* (emission mirrors the model's
 * charges, so counts are backend-independent; only latencies differ).
 */
bool
modelFieldsEqual(const core::DailyReport &a, const core::DailyReport &b)
{
    return a.accesses == b.accesses &&
           a.read_accesses == b.read_accesses && a.hits == b.hits &&
           a.read_hits == b.read_hits && a.write_hits == b.write_hits &&
           a.allocation_write_blocks == b.allocation_write_blocks &&
           a.batch_moved_blocks == b.batch_moved_blocks &&
           a.ssd_read_ios == b.ssd_read_ios &&
           a.ssd_write_ios == b.ssd_write_ios &&
           a.ssd_alloc_ios == b.ssd_alloc_ios &&
           a.storage_read_ios + a.storage_read_errors ==
               b.storage_read_ios + b.storage_read_errors &&
           a.storage_write_ios + a.storage_write_errors ==
               b.storage_write_ios + b.storage_write_errors;
}

} // namespace

StorageDiffResult
runStorageDifferential(trace::TraceReader &reader,
                       const StorageDiffConfig &config)
{
    SIEVE_CHECK(!config.appliance.backend.factory,
                "storage differential pins its own backends; clear "
                "the custom backend factory");

    const auto runOnce = [&](storage::BackendKind kind) {
        core::ApplianceConfig ac = config.appliance;
        ac.backend.kind = kind;
        ac.backend.file = config.file;
        std::unique_ptr<core::Appliance> appliance =
            makeAppliance(config.policy, ac);
        reader.reset();
        runTrace(reader, *appliance, config.driver);
        return appliance->daily();
    };

    StorageDiffResult result;
    result.analytic_days = runOnce(storage::BackendKind::Analytic);
    result.file_days = runOnce(storage::BackendKind::File);

    result.model_identical =
        result.analytic_days.size() == result.file_days.size();
    if (result.model_identical) {
        for (size_t d = 0; d < result.analytic_days.size(); ++d) {
            if (!modelFieldsEqual(result.analytic_days[d],
                                  result.file_days[d])) {
                result.model_identical = false;
                break;
            }
        }
    }

    const size_t n_days = std::min(result.analytic_days.size(),
                                   result.file_days.size());
    result.days.reserve(n_days);
    for (size_t d = 0; d < n_days; ++d) {
        const core::DailyReport &a = result.analytic_days[d];
        const core::DailyReport &f = result.file_days[d];
        StorageDiffDay row;
        row.day = static_cast<int>(d);
        row.predicted_ns = a.storage_read_ns + a.storage_write_ns;
        row.measured_ns = f.storage_read_ns + f.storage_write_ns;
        row.ratio = row.predicted_ns
                        ? static_cast<double>(row.measured_ns) /
                              static_cast<double>(row.predicted_ns)
                        : 0.0;
        if (config.ns_tolerance != 0) {
            const uint64_t diff =
                row.measured_ns > row.predicted_ns
                    ? row.measured_ns - row.predicted_ns
                    : row.predicted_ns - row.measured_ns;
            if (diff > config.ns_tolerance)
                result.within_tolerance = false;
        }
        result.days.push_back(row);
    }
    return result;
}

} // namespace sim
} // namespace sievestore
