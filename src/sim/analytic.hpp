/**
 * @file
 * The Table 2 analytical model (Section 3.1).
 *
 * Under an oracle replacement policy that keeps the top 1 % of blocks
 * resident, the paper compares allocation policies by what fraction of
 * all accesses turn into SSD operations of each kind, assuming a 35 %
 * hit rate and a 3:1 read:write ratio in both hits and misses.
 */

#ifndef SIEVESTORE_SIM_ANALYTIC_HPP
#define SIEVESTORE_SIM_ANALYTIC_HPP

namespace sievestore {
namespace sim {

/** Allocation policies covered by Table 2. */
enum class Table2Policy {
    AOD,  ///< allocate-on-demand
    WMNA, ///< write-miss no-allocate
    ISA,  ///< ideal-selective-allocate
};

/**
 * One row of Table 2, every entry a fraction of total accesses.
 */
struct Table2Row
{
    double hits = 0.0;
    double misses = 0.0;
    double alloc_writes = 0.0;
    double read_hits = 0.0;
    /** Write hits + allocation-writes (the slow-SSD-op column). */
    double write_ops = 0.0;
    /** All SSD operations (read hits + write ops). */
    double ssd_ops = 0.0;
};

/**
 * Compute one Table 2 row.
 * @param policy    allocation policy
 * @param hit_rate  assumed hit rate (paper: 0.35)
 * @param read_frac read fraction of hits and misses (paper: 0.75)
 * @param isa_eps   ISA's allocation-writes as a fraction of accesses;
 *                  "1% of the number of unique blocks accessed which is
 *                  smaller than 1% of the accesses" — the paper writes
 *                  it as epsilon < 1 %
 */
Table2Row table2Row(Table2Policy policy, double hit_rate = 0.35,
                    double read_frac = 0.75, double isa_eps = 0.01);

} // namespace sim
} // namespace sievestore

#endif // SIEVESTORE_SIM_ANALYTIC_HPP
