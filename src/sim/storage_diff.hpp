/**
 * @file
 * Storage differential: model-vs-measured divergence on one trace.
 *
 * Replays the same trace twice through identically-configured
 * appliances — once with the AnalyticBackend (the model echoing its
 * own service times) and once with the FileBackend (real O_DIRECT
 * block I/O) — then compares the runs day by day.
 *
 * Two comparisons with very different standards:
 *
 *  - Model-side fields (hits, SSD I/O charges, storage op/error
 *    counts) must be BIT-IDENTICAL. Backends observe, they never
 *    decide, so any divergence here is a contract violation — a
 *    backend answer leaked into a sieve/cache/eviction decision.
 *  - Measured latency (storage_*_ns) is expected to diverge: that
 *    divergence IS the validation signal, reported per day as a
 *    measured/predicted ratio and optionally gated by a tolerance.
 */

#ifndef SIEVESTORE_SIM_STORAGE_DIFF_HPP
#define SIEVESTORE_SIM_STORAGE_DIFF_HPP

#include <vector>

#include "core/appliance.hpp"
#include "sim/driver.hpp"
#include "sim/experiment.hpp"
#include "trace/trace_reader.hpp"

namespace sievestore {
namespace sim {

/** One trace replayed through both backends. */
struct StorageDiffConfig
{
    /** Appliance configuration shared by both runs; its `backend`
     * field is overridden per run (Analytic, then File). */
    core::ApplianceConfig appliance;
    /** Allocation policy shared by both runs. */
    PolicyConfig policy;
    /** FileBackend knobs for the measured run. */
    storage::FileBackendConfig file;
    /**
     * Per-day divergence gate: |measured - predicted| total latency
     * in nanoseconds above which within_tolerance flips false. 0
     * disables the gate (report-only) — a real device diverges from
     * the X25-E datasheet by orders of magnitude, so CI uses the
     * gate only with tolerances sized to the host.
     */
    uint64_t ns_tolerance = 0;
    /** Replay options (invariant audits, batch width). */
    DriverOptions driver;
};

/** Per-day model-vs-measured latency row. */
struct StorageDiffDay
{
    int day = 0;
    /** Analytic run's total storage latency (reads + writes), ns. */
    uint64_t predicted_ns = 0;
    /** File run's total measured latency, ns. */
    uint64_t measured_ns = 0;
    /** measured / predicted (0 when predicted is 0). */
    double ratio = 0.0;
};

/** Differential outcome (see ok()). */
struct StorageDiffResult
{
    /** Every model-side DailyReport field bit-identical per day. */
    bool model_identical = false;
    /** All days within ns_tolerance (vacuously true when 0). */
    bool within_tolerance = true;
    std::vector<core::DailyReport> analytic_days;
    std::vector<core::DailyReport> file_days;
    std::vector<StorageDiffDay> days;

    bool ok() const { return model_identical && within_tolerance; }
};

/**
 * Run the differential. Resets the reader before each replay, so any
 * resettable TraceReader works. Aborts (SIEVE_CHECK) if the config
 * pins a custom backend factory — the two runs must control the
 * backend themselves.
 */
StorageDiffResult runStorageDifferential(trace::TraceReader &reader,
                                         const StorageDiffConfig &config);

} // namespace sim
} // namespace sievestore

#endif // SIEVESTORE_SIM_STORAGE_DIFF_HPP
