/**
 * @file
 * Experiment plumbing shared by the benchmark harnesses: the policy
 * factory covering every configuration in the paper's evaluation, and a
 * summary structure for occupancy-derived cost metrics.
 */

#ifndef SIEVESTORE_SIM_EXPERIMENT_HPP
#define SIEVESTORE_SIM_EXPERIMENT_HPP

#include <memory>
#include <string>

#include "core/appliance.hpp"
#include "core/sievestore_c.hpp"
#include "trace/trace_reader.hpp"

namespace sievestore {
namespace sim {

/** The allocation configurations evaluated in the paper. */
enum class PolicyKind {
    /** Per-day oracle: top 1 % of each day's blocks (discrete). */
    Ideal,
    /** SieveStore-D: ADBA, threshold 10/day (discrete). */
    SieveStoreD,
    /** SieveStore-C: two-tier continuous sieve. */
    SieveStoreC,
    /** Random 1 % of each day's blocks (discrete). */
    RandSieveBlkD,
    /** Random 1 % of misses (continuous). */
    RandSieveC,
    /** Allocate-on-demand (continuous, unsieved). */
    AOD,
    /** Write-miss no-allocate (continuous, unsieved). */
    WMNA,
    /** SieveStore-C with online (t1, t2) adaptation (continuous). */
    Adaptive,
};

/** Display name matching the paper's figures. */
const char *policyKindName(PolicyKind kind);

/** Factory parameters for one policy instance. */
struct PolicyConfig
{
    PolicyKind kind = PolicyKind::SieveStoreC;
    /** SieveStore-D access-count threshold (paper: 10). */
    uint64_t adba_threshold = 10;
    /** Use the on-disk map-reduce access log for SieveStore-D. */
    bool adba_disk_log = false;
    /** Scratch directory for the disk log. */
    std::string adba_log_dir = "/tmp/sievestore-adba";
    /** RandSieve allocation fraction/probability (paper: 1 %). */
    double rand_fraction = 0.01;
    /** Ideal selector's top fraction (paper: 1 %). */
    double ideal_fraction = 0.01;
    /** SieveStore-C tunables (thresholds, window, IMCT size). Also
     * seeds the adaptive sieve's production setting. */
    core::SieveStoreCConfig sieve_c;
    /** Adaptive-sieve tunables (PolicyKind::Adaptive); its `base` is
     * overridden by `sieve_c` above so the two kinds share one
     * starting configuration. */
    core::AdaptiveSieveConfig adaptive;
    /** Seed for randomized policies. */
    uint64_t seed = 17;
    /**
     * Expected distinct blocks per epoch; when non-zero the factory
     * pre-sizes the discrete selector's counting state
     * (DiscreteSelector::reserveEpochBlocks) so replay never rehashes
     * it. Zero leaves the selector growing on demand.
     */
    uint64_t expected_epoch_blocks = 0;
};

/**
 * Build an appliance for a policy configuration.
 * PolicyKind::Ideal needs future knowledge and a profiling pass; use
 * makeIdealAppliance for it (this factory rejects it).
 */
std::unique_ptr<core::Appliance>
makeAppliance(const PolicyConfig &policy,
              const core::ApplianceConfig &appliance);

/**
 * Profiling pass: the most-accessed `fraction` of blocks for every
 * calendar day of the trace. Resets the reader before and after.
 */
std::vector<std::vector<trace::BlockId>>
perDayTopBlocks(trace::TraceReader &reader, double fraction);

/**
 * Build the Section 5.1 "ideal" appliance: a profiling pass computes
 * each day's top blocks; an OracleDaySelector swaps them in at day
 * boundaries and the first day's set is preloaded.
 */
std::unique_ptr<core::Appliance>
makeIdealAppliance(trace::TraceReader &reader,
                   const PolicyConfig &policy,
                   const core::ApplianceConfig &appliance);

/** Occupancy-derived cost summary (Figures 8/9). */
struct CostSummary
{
    uint32_t max_drives = 0;
    uint32_t drives_999 = 0; ///< drives for 99.9 % minute coverage
    uint32_t drives_99 = 0;
    uint32_t drives_90 = 0;
    double coverage_one_drive = 0.0;
    double endurance_years = 0.0;
};

/** Summarize an appliance's occupancy tracker after a run. */
CostSummary summarizeCost(const core::Appliance &appliance,
                          double trace_days);

} // namespace sim
} // namespace sievestore

#endif // SIEVESTORE_SIM_EXPERIMENT_HPP
