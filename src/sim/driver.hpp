/**
 * @file
 * Trace-to-appliance drivers.
 *
 * runTrace() streams a time-ordered request trace into one appliance,
 * issuing calendar-day boundaries (epoch boundaries for discrete
 * configurations) exactly as the paper's day-partitioned analysis does.
 */

#ifndef SIEVESTORE_SIM_DRIVER_HPP
#define SIEVESTORE_SIM_DRIVER_HPP

#include "core/appliance.hpp"
#include "trace/trace_reader.hpp"

namespace sievestore {
namespace sim {

/**
 * Replay an entire trace through an appliance. Day boundaries are
 * detected from request timestamps; finishDay() is invoked for every
 * crossed boundary (including empty days) and finishTrace() at the end.
 * No epoch is run after the final day — there is no next day to serve.
 */
void runTrace(trace::TraceReader &reader, core::Appliance &appliance);

} // namespace sim
} // namespace sievestore

#endif // SIEVESTORE_SIM_DRIVER_HPP
