/**
 * @file
 * Trace-to-appliance drivers.
 *
 * runTrace() streams a time-ordered request trace into one appliance,
 * issuing calendar-day boundaries (epoch boundaries for discrete
 * configurations) exactly as the paper's day-partitioned analysis does.
 *
 * Both drivers (this one and sim/sharded.cpp's runSharded) can audit
 * appliance invariants at every day boundary: opt in per run via
 * DriverOptions, or globally via the SIEVE_CHECK_INVARIANTS=1
 * environment variable. DCHECK-enabled builds (Debug, the sanitizer
 * presets) audit by default.
 */

#ifndef SIEVESTORE_SIM_DRIVER_HPP
#define SIEVESTORE_SIM_DRIVER_HPP

#include "core/appliance.hpp"
#include "trace/trace_reader.hpp"

namespace sievestore {
namespace sim {

/**
 * Default for DriverOptions::check_invariants: true when the
 * SIEVE_CHECK_INVARIANTS environment variable is a non-zero value, or
 * (absent the variable) when SIEVE_DCHECK is compiled in. Setting
 * SIEVE_CHECK_INVARIANTS=0 disables auditing even in debug builds.
 */
bool defaultCheckInvariants();

/** Replay options shared by the sim drivers. */
struct DriverOptions
{
    /** Audit Appliance::checkInvariants() at every day boundary and
     * at end of trace. */
    bool check_invariants = defaultCheckInvariants();
    /**
     * Requests per decode batch (see sim/batch.hpp). Batch size never
     * changes replay results — only the grouping of the request
     * stream; 1 reproduces the historical per-request path.
     */
    size_t batch = trace::kDefaultBatchRequests;
};

/**
 * Replay an entire trace through an appliance. Day boundaries are
 * detected from request timestamps; finishDay() is invoked for every
 * crossed boundary (including empty days) and finishTrace() at the end.
 * No epoch is run after the final day — there is no next day to serve.
 */
void runTrace(trace::TraceReader &reader, core::Appliance &appliance,
              const DriverOptions &options);

/** Replay with default options (env-controlled invariant auditing). */
void runTrace(trace::TraceReader &reader, core::Appliance &appliance);

} // namespace sim
} // namespace sievestore

#endif // SIEVESTORE_SIM_DRIVER_HPP
