#include "sim/per_server.hpp"

#include <cmath>
#include <unordered_set>

#include "sim/batch.hpp"
#include "util/logging.hpp"
#include "util/sim_time.hpp"

namespace sievestore {
namespace sim {

PerServerResult
runPerServer(trace::TraceReader &reader, const PerServerConfig &config)
{
    const size_t n = config.capacities_blocks.size();
    if (n == 0)
        util::fatal("per-server simulation requires at least one server");

    std::vector<std::unique_ptr<core::Appliance>> appliances;
    appliances.reserve(n);
    for (size_t s = 0; s < n; ++s) {
        core::ApplianceConfig ac = config.base;
        ac.cache_blocks = std::max<uint64_t>(1,
                                             config.capacities_blocks[s]);
        PolicyConfig pc = config.policy;
        pc.seed += s; // decorrelate randomized policies across servers
        if (pc.adba_disk_log)
            pc.adba_log_dir += "/server" + std::to_string(s);
        appliances.push_back(makeAppliance(pc, ac));
    }

    // Per-server accumulation through the shared batching facade:
    // whole requests route by server, bins flush into processBatch at
    // the same points the per-request loop would have processed them.
    auto deliver = [&appliances](size_t server,
                                 std::span<const trace::Request> reqs) {
        appliances[server]->processBatch(reqs);
    };
    RequestBatcher<decltype(deliver)> batcher(n, config.batch, deliver);
    pumpBatches(
        reader, config.batch,
        [&](std::span<const trace::Request> slice) {
            for (const trace::Request &req : slice) {
                if (req.server >= n)
                    util::fatal(
                        "request from server %u but only %zu capacities",
                        unsigned(req.server), n);
                batcher.add(req.server, req);
            }
        },
        [&](int day) {
            batcher.flushAll();
            for (auto &a : appliances)
                a->finishDay(day);
        });
    batcher.flushAll();

    PerServerResult result;
    result.per_server.resize(n);
    for (size_t s = 0; s < n; ++s) {
        appliances[s]->finishTrace();
        result.per_server[s] = appliances[s]->daily();
        result.total_capacity_blocks += config.capacities_blocks[s];
        if (result.per_server[s].size() > result.combined.size())
            result.combined.resize(result.per_server[s].size());
    }
    for (size_t s = 0; s < n; ++s) {
        const auto &days = result.per_server[s];
        for (size_t d = 0; d < days.size(); ++d)
            result.combined[d].add(days[d]);
    }
    return result;
}

std::vector<uint64_t>
elasticTopPercentCapacities(trace::TraceReader &reader, size_t servers,
                            double fraction)
{
    std::vector<uint64_t> best(servers, 0);
    std::vector<std::unordered_set<trace::BlockId>> uniq(servers);

    auto fold = [&](int) {
        for (size_t s = 0; s < servers; ++s) {
            const uint64_t top = static_cast<uint64_t>(std::ceil(
                fraction * static_cast<double>(uniq[s].size())));
            best[s] = std::max(best[s], top);
            uniq[s].clear();
        }
    };

    trace::Request req;
    bool any = false;
    int current_day = 0;
    while (reader.next(req)) {
        if (req.server >= servers)
            util::fatal("request from server %u but only %zu servers",
                        unsigned(req.server), servers);
        const int day = static_cast<int>(util::dayOf(req.time));
        if (!any) {
            current_day = day;
            any = true;
        }
        if (day != current_day) {
            fold(current_day);
            current_day = day;
        }
        for (uint32_t i = 0; i < req.length_blocks; ++i)
            uniq[req.server].insert(req.blockAt(i));
    }
    if (any)
        fold(current_day);
    return best;
}

} // namespace sim
} // namespace sievestore
