#include "sim/driver.hpp"

#include "util/logging.hpp"
#include "util/sim_time.hpp"

namespace sievestore {
namespace sim {

void
runTrace(trace::TraceReader &reader, core::Appliance &appliance)
{
    trace::Request req;
    bool any = false;
    int current_day = 0;
    while (reader.next(req)) {
        const int day = static_cast<int>(util::dayOf(req.time));
        if (!any) {
            current_day = day;
            any = true;
        } else if (day < current_day) {
            util::fatal("trace is not time-ordered (day %d after %d)",
                        day, current_day);
        }
        while (current_day < day) {
            appliance.finishDay(current_day);
            ++current_day;
        }
        appliance.processRequest(req);
    }
    appliance.finishTrace();
}

} // namespace sim
} // namespace sievestore
