#include "sim/driver.hpp"

#include <cstdlib>
#include <cstring>

#include "sim/batch.hpp"
#include "util/check.hpp"
#include "util/logging.hpp"
#include "util/sim_time.hpp"

namespace sievestore {
namespace sim {

bool
defaultCheckInvariants()
{
    if (const char *env = std::getenv("SIEVE_CHECK_INVARIANTS"))
        return std::strcmp(env, "0") != 0;
    return SIEVE_DCHECKS_ENABLED;
}

void
runTrace(trace::TraceReader &reader, core::Appliance &appliance,
         const DriverOptions &options)
{
    // pumpBatches slices decode batches at day boundaries, so each
    // slice feeds processBatch directly — no re-accumulation needed
    // for a single appliance.
    pumpBatches(
        reader, options.batch,
        [&](std::span<const trace::Request> slice) {
            appliance.processBatch(slice);
        },
        [&](int day) {
            appliance.finishDay(day);
            if (options.check_invariants)
                appliance.checkInvariants();
        });
    appliance.finishTrace();
    if (options.check_invariants)
        appliance.checkInvariants();
}

void
runTrace(trace::TraceReader &reader, core::Appliance &appliance)
{
    runTrace(reader, appliance, DriverOptions{});
}

} // namespace sim
} // namespace sievestore
