#include "sim/driver.hpp"

#include <cstdlib>
#include <cstring>

#include "util/check.hpp"
#include "util/logging.hpp"
#include "util/sim_time.hpp"

namespace sievestore {
namespace sim {

bool
defaultCheckInvariants()
{
    if (const char *env = std::getenv("SIEVE_CHECK_INVARIANTS"))
        return std::strcmp(env, "0") != 0;
    return SIEVE_DCHECKS_ENABLED;
}

void
runTrace(trace::TraceReader &reader, core::Appliance &appliance,
         const DriverOptions &options)
{
    trace::Request req;
    bool any = false;
    int current_day = 0;
    while (reader.next(req)) {
        const int day = static_cast<int>(util::dayOf(req.time));
        if (!any) {
            current_day = day;
            any = true;
        } else if (day < current_day) {
            util::fatal("trace is not time-ordered (day %d after %d)",
                        day, current_day);
        }
        while (current_day < day) {
            appliance.finishDay(current_day);
            if (options.check_invariants)
                appliance.checkInvariants();
            ++current_day;
        }
        appliance.processRequest(req);
    }
    appliance.finishTrace();
    if (options.check_invariants)
        appliance.checkInvariants();
}

void
runTrace(trace::TraceReader &reader, core::Appliance &appliance)
{
    runTrace(reader, appliance, DriverOptions{});
}

} // namespace sim
} // namespace sievestore
