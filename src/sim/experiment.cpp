#include "sim/experiment.hpp"

#include "analysis/popularity.hpp"
#include "core/rand_sieve.hpp"
#include "core/unsieved.hpp"
#include "util/logging.hpp"
#include "util/sim_time.hpp"

namespace sievestore {
namespace sim {

const char *
policyKindName(PolicyKind kind)
{
    switch (kind) {
      case PolicyKind::Ideal:
        return "Ideal";
      case PolicyKind::SieveStoreD:
        return "SieveStore-D";
      case PolicyKind::SieveStoreC:
        return "SieveStore-C";
      case PolicyKind::RandSieveBlkD:
        return "RandSieve-BlkD";
      case PolicyKind::RandSieveC:
        return "RandSieve-C";
      case PolicyKind::AOD:
        return "AOD";
      case PolicyKind::WMNA:
        return "WMNA";
      case PolicyKind::Adaptive:
        return "SieveStore-C/adaptive";
    }
    util::panic("unknown policy kind");
}

std::unique_ptr<core::Appliance>
makeAppliance(const PolicyConfig &policy,
              const core::ApplianceConfig &appliance)
{
    using core::Appliance;
    switch (policy.kind) {
      case PolicyKind::Ideal:
        util::fatal("PolicyKind::Ideal requires a profiling pass; "
                    "use makeIdealAppliance()");
      case PolicyKind::SieveStoreD: {
        auto selector =
            policy.adba_disk_log
                ? std::make_unique<core::AdbaSelector>(
                      policy.adba_threshold, policy.adba_log_dir)
                : std::make_unique<core::AdbaSelector>(
                      policy.adba_threshold);
        if (policy.expected_epoch_blocks)
            selector->reserveEpochBlocks(policy.expected_epoch_blocks);
        return std::make_unique<Appliance>(appliance,
                                           std::move(selector));
      }
      case PolicyKind::SieveStoreC: {
        // Continuous kinds go through the spec-driven constructor:
        // the flat build runs them on the switch-dispatch FlatSieve
        // engine, the SIEVE_FLAT_SIEVE=OFF build (or an explicit
        // appliance.allocation factory) on the virtual references.
        core::ApplianceConfig cfg = appliance;
        cfg.sieve.kind = core::SieveKind::SieveStoreC;
        cfg.sieve.sieve_c = policy.sieve_c;
        return std::make_unique<Appliance>(std::move(cfg));
      }
      case PolicyKind::RandSieveBlkD: {
        auto selector = std::make_unique<core::RandomBlockSelector>(
            policy.rand_fraction, policy.seed);
        if (policy.expected_epoch_blocks)
            selector->reserveEpochBlocks(policy.expected_epoch_blocks);
        return std::make_unique<Appliance>(appliance,
                                           std::move(selector));
      }
      case PolicyKind::RandSieveC: {
        core::ApplianceConfig cfg = appliance;
        cfg.sieve.kind = core::SieveKind::RandSieveC;
        cfg.sieve.rand_probability = policy.rand_fraction;
        cfg.sieve.rand_seed = policy.seed;
        return std::make_unique<Appliance>(std::move(cfg));
      }
      case PolicyKind::AOD: {
        core::ApplianceConfig cfg = appliance;
        cfg.sieve.kind = core::SieveKind::Aod;
        return std::make_unique<Appliance>(std::move(cfg));
      }
      case PolicyKind::WMNA: {
        core::ApplianceConfig cfg = appliance;
        cfg.sieve.kind = core::SieveKind::Wmna;
        return std::make_unique<Appliance>(std::move(cfg));
      }
      case PolicyKind::Adaptive: {
        core::ApplianceConfig cfg = appliance;
        cfg.sieve.kind = core::SieveKind::Adaptive;
        cfg.sieve.adaptive = policy.adaptive;
        cfg.sieve.adaptive.base = policy.sieve_c;
        return std::make_unique<Appliance>(std::move(cfg));
      }
    }
    util::panic("unknown policy kind");
}

std::vector<std::vector<trace::BlockId>>
perDayTopBlocks(trace::TraceReader &reader, double fraction)
{
    reader.reset();
    std::vector<std::vector<trace::BlockId>> sets;
    analysis::BlockCounts counts;
    int current_day = -1;

    auto fold = [&]() {
        if (current_day < 0)
            return;
        if (sets.size() <= static_cast<size_t>(current_day))
            sets.resize(static_cast<size_t>(current_day) + 1);
        analysis::PopularityProfile profile(counts, 1);
        sets[static_cast<size_t>(current_day)] =
            profile.topBlocks(fraction);
        counts.clear();
    };

    trace::Request req;
    while (reader.next(req)) {
        const int day = static_cast<int>(util::dayOf(req.time));
        if (day != current_day) {
            fold();
            current_day = day;
        }
        for (uint32_t i = 0; i < req.length_blocks; ++i)
            ++counts[req.blockAt(i)];
    }
    fold();
    reader.reset();
    return sets;
}

std::unique_ptr<core::Appliance>
makeIdealAppliance(trace::TraceReader &reader, const PolicyConfig &policy,
                   const core::ApplianceConfig &appliance)
{
    auto sets = perDayTopBlocks(reader, policy.ideal_fraction);
    int first_day = -1;
    for (size_t d = 0; d < sets.size(); ++d) {
        if (!sets[d].empty()) {
            first_day = static_cast<int>(d);
            break;
        }
    }
    auto first_set = first_day >= 0
                         ? sets[static_cast<size_t>(first_day)]
                         : std::vector<trace::BlockId>{};
    auto app = std::make_unique<core::Appliance>(
        appliance, std::make_unique<core::OracleDaySelector>(
                       std::move(sets), first_day));
    if (first_day >= 0)
        app->preload(first_set, first_day);
    return app;
}

CostSummary
summarizeCost(const core::Appliance &appliance, double trace_days)
{
    CostSummary cost;
    const auto *occ = appliance.occupancy();
    if (!occ)
        return cost;
    cost.max_drives = occ->maxDrives();
    cost.drives_999 = occ->drivesForCoverage(0.999);
    cost.drives_99 = occ->drivesForCoverage(0.99);
    cost.drives_90 = occ->drivesForCoverage(0.90);
    cost.coverage_one_drive = occ->coverageWithDrives(1);
    cost.endurance_years =
        ssd::enduranceYears(occ->model(), occ->bytesWritten(), trace_days);
    return cost;
}

} // namespace sim
} // namespace sievestore
