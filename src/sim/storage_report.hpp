/**
 * @file
 * Measured-vs-predicted storage latency summary for report tables.
 *
 * The DailyReport storage_* columns hold what the configured backend
 * actually measured; the SSD model says what those same I/Os should
 * have cost. This helper folds both into one row-sized summary so
 * report-table printers (the examples' per-day and per-node tables)
 * can show the divergence next to the model columns. Under the AnalyticBackend
 * measured == predicted to the nanosecond by construction — the
 * conversion is the same storage::modelServiceNs the backend answers
 * with — so a ratio other than 1.000 there is a bug, while under the
 * FileBackend the ratio IS the model-validation signal.
 */

#ifndef SIEVESTORE_SIM_STORAGE_REPORT_HPP
#define SIEVESTORE_SIM_STORAGE_REPORT_HPP

#include <cstdint>
#include <string>

#include "core/appliance.hpp"
#include "ssd/ssd_model.hpp"
#include "util/flow_annotations.hpp"

namespace sievestore {
namespace sim {

/** Measured-vs-predicted latency rollup of one DailyReport. */
struct StorageLatencySummary
{
    /** Completed 4 KB device I/Os (reads + writes). */
    uint64_t measured_ios = 0;
    /** Failed device I/Os (counted, never charged latency). */
    uint64_t errors = 0;
    /** Summed measured latency, ns (storage_read_ns + write_ns). */
    uint64_t measured_ns = 0;
    /** Model-predicted latency for the same I/O mix, ns. */
    uint64_t predicted_ns = 0;
    /** measured_ns / predicted_ns; 0 when nothing was predicted. */
    double ratio = 0.0;
};

/**
 * Fold one report's measured storage columns against the model.
 *
 * SIEVE_FLOW_SANITIZE: this is the audited measured->report
 * boundary — the summary feeds table cells and log lines only, and
 * nothing downstream of a table printer can reach a sieve, cache,
 * eviction, or model-accounting decision, so absorbing the
 * storage_* taint here is safe by construction.
 */
SIEVE_FLOW_SANITIZE StorageLatencySummary
storageLatencySummary(const core::DailyReport &rep,
                      const ssd::SsdModel &ssd);

/** `measured/predicted` cell text, e.g. "1.000" or "-" when the
 * report carries no completed device I/O. */
std::string storageRatioCell(const StorageLatencySummary &s);

} // namespace sim
} // namespace sievestore

#endif // SIEVESTORE_SIM_STORAGE_REPORT_HPP
