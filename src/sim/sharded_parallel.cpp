/**
 * @file
 * Parallel sharded replay engine.
 *
 * The scale-out design of sim/sharded.hpp guarantees that appliance
 * nodes share no block state: the page->shard hash partitions the
 * block space, so every node's DailyReports are a pure function of
 * (a) the subrequest stream routed to it and (b) the day-boundary
 * sequence fired on it. runShardedParallel exploits exactly that
 * guarantee: the calling thread replays the trace once, routing each
 * subrequest — split by the same forEachSubrequest the serial driver
 * uses — into a bounded SPSC queue per shard, interleaved with
 * day-end markers pushed to *every* queue at each calendar-day
 * crossing (a shard can be idle for a day yet must still run its
 * epoch boundary). Subrequests travel in fixed-size batches (one
 * queue item carries up to kQueueBatchRequests of them, accumulated
 * via the sim/batch.hpp facade), so the per-request cost of the
 * hand-off — one push/pop and one atomic release — is paid once per
 * batch; day-end markers flush every partial batch first, so batching
 * never reorders a shard's stream or lets a batch straddle a day.
 * Each worker consumes its queues strictly in order, so every node
 * observes the identical request/finishDay sequence runSharded would
 * have issued, and the per-node reports are bit-identical by
 * construction — the differential tests assert it field-for-field.
 *
 * Determinism therefore needs no barriers at all; the calendar-day
 * barrier of deterministic mode exists to keep the *deployment*
 * observable: it holds every shard at the same epoch boundary so the
 * cross-shard invariant audit (summed totals, lockstep day cursors)
 * sees a consistent cut, exactly where the serial driver audits.
 *
 * Deadlock-freedom: workers poll their queues non-blockingly and
 * round-robin, so a full queue is always eventually drained by its
 * owner; the reader blocks only on a full queue, and every item that
 * precedes a barrier round is already enqueued before the reader can
 * block on the next round's items.
 */

#include <algorithm>
#include <array>
#include <condition_variable>
#include <span>
#include <thread>
#include <vector>

#include "sim/batch.hpp"
#include "sim/driver.hpp"
#include "sim/sharded.hpp"
#include "util/alloc_guard.hpp"
#include "util/check.hpp"
#include "util/logging.hpp"
#include "util/sim_time.hpp"
#include "util/spsc_queue.hpp"
#include "util/thread_annotations.hpp"

namespace sievestore {
namespace sim {

namespace {

/**
 * One queue entry: a batch of routed subrequests, or a calendar-day
 * boundary. The request payload is a fixed POD array so the ring
 * stays pre-sized; items are written into and consumed out of the
 * ring slots in place (pushWith / tryConsumeWith), so only the
 * count-prefix of `reqs` is ever copied. Partial batches (flushed at
 * day ends and end of trace) just carry a smaller count. All requests
 * in one item belong to one calendar day.
 */
struct Item
{
    enum class Kind : uint8_t { Requests, DayEnd };
    Kind kind = Kind::Requests;
    /** Valid entries in `reqs` (Requests only). */
    uint16_t count = 0;
    /** Day being closed (DayEnd only). */
    int day = 0;
    std::array<trace::Request, kQueueBatchRequests> reqs;
};

using ItemQueue = util::SpscQueue<Item>;

/**
 * Cyclic barrier with a serial phase: the last thread to arrive runs
 * `serial_fn` while the others are parked, then everyone is released.
 * The mutex hand-off makes all pre-arrival writes (each worker's
 * finishDay effects) visible to the serial phase and vice versa.
 *
 * The barrier state is GUARDED_BY(mu): Clang's thread-safety analysis
 * rejects any touch of arrived/generation outside the lock, including
 * inside the wait predicate (annotated REQUIRES(mu) — the predicate
 * runs under the reacquired lock per the condition_variable contract).
 */
class DayBarrier
{
  public:
    explicit DayBarrier(size_t parties) : parties_(parties) {}

    template <typename Fn>
    void
    arriveAndWait(Fn &&serial_fn)
    {
        util::MutexLock lock(mu);
        if (++arrived == parties_) {
            serial_fn();
            arrived = 0;
            ++generation;
            cv.notify_all();
            return;
        }
        const uint64_t gen = generation;
        // condition_variable_any waits on the annotated scoped lock
        // (MutexLock is BasicLockable); the capability is held again
        // whenever the predicate runs and when wait returns.
        cv.wait(lock,
                [&]() REQUIRES(mu) { return generation != gen; });
    }

  private:
    util::Mutex mu;
    std::condition_variable_any cv;
    const size_t parties_;
    size_t arrived GUARDED_BY(mu) = 0;
    uint64_t generation GUARDED_BY(mu) = 0;
};

/** Where one shard stands within the current replay round. */
enum class Phase : uint8_t { Running, AtDayEnd, Closed };

/** Everything a worker thread needs; nodes are owned by the result. */
struct WorkerArgs
{
    std::vector<size_t> owned; ///< shard indices, round-robin assigned
    const std::vector<ItemQueue *> *queues = nullptr;
    ShardedResult *result = nullptr;
    DayBarrier *barrier = nullptr; ///< null in free-running mode
    bool audit = false;
};

/**
 * Drain whatever shard `s` has available. Advances the node through
 * requests until the queue momentarily empties (Running), a day-end
 * marker is consumed (AtDayEnd, day stored in *day_out), or the queue
 * is closed and fully drained (Closed, after finishTrace).
 */
Phase
pollShard(ItemQueue &queue, core::Appliance &node, int *day_out)
{
    // Each shard queue is consumed only by its owning worker (the
    // round-robin assignment in runShardedParallel); claim the
    // consumer capability for this scope.
    queue.assertConsumerRole();
    for (;;) {
        // Items are consumed *in place*: the node processes the batch
        // straight out of the ring slot, and only then is the slot
        // released back to the producer — zero copies and one atomic
        // release per batch. Holding the slot through processBatch is
        // safe because the ring always has >= 2 slots, so the reader
        // keeps staging the next item concurrently.
        bool day_end = false;
        auto consume = [&](const Item &item) {
            if (item.kind == Item::Kind::Requests) {
                // One appliance entry per batch: day-report lookup
                // and (on flat configurations) the no-alloc region
                // are amortized over the whole item.
                node.processBatch(std::span<const trace::Request>(
                    item.reqs.data(), item.count));
            } else {
                node.finishDay(item.day);
                *day_out = item.day;
                day_end = true;
            }
        };
        bool got = queue.tryConsumeWith(consume);
        if (!got && queue.closed()) {
            // Re-check after observing the close flag: items pushed
            // before close() may race with the flag's visibility.
            got = queue.tryConsumeWith(consume);
            if (!got)
                break;
        }
        if (!got)
            return Phase::Running;
        if (day_end)
            return Phase::AtDayEnd;
    }
    node.finishTrace();
    return Phase::Closed;
}

void
runWorker(const WorkerArgs &args)
{
    const std::vector<ItemQueue *> &queues = *args.queues;
    ShardedResult &result = *args.result;
    const size_t n = args.owned.size();
    std::vector<Phase> phase(n, Phase::Running);
    size_t closed_count = 0;

    while (closed_count < n) {
        // One round: advance every owned shard to its next day-end
        // marker (or to close). Non-blocking round-robin polling so a
        // stalled shard never prevents draining another — the
        // reader's backpressure depends on it.
        size_t running = n - closed_count;
        int round_day = 0;
        bool saw_day_end = false;
        while (running > 0) {
            bool progressed = false;
            for (size_t k = 0; k < n; ++k) {
                if (phase[k] != Phase::Running)
                    continue;
                const size_t s = args.owned[k];
                int day = 0;
                const Phase p =
                    pollShard(*queues[s], *result.nodes[s], &day);
                if (p == Phase::Running)
                    continue;
                phase[k] = p;
                --running;
                progressed = true;
                if (p == Phase::AtDayEnd) {
                    SIEVE_CHECK(!saw_day_end || day == round_day,
                                "shards diverged within one round: "
                                "day %d vs %d",
                                day, round_day);
                    saw_day_end = true;
                    round_day = day;
                    if (!args.barrier && args.audit)
                        result.nodes[s]->checkInvariants();
                } else {
                    ++closed_count;
                }
            }
            if (running > 0 && !progressed)
                std::this_thread::yield();
        }

        // The reader pushes each marker to every queue before any
        // later item, so a round ends uniformly: either every owned
        // shard hit the same day-end or every one closed.
        if (saw_day_end) {
            SIEVE_CHECK(closed_count == 0 ||
                            closed_count == n,
                        "round mixed day-end and close markers");
            if (args.barrier) {
                args.barrier->arriveAndWait([&result, round_day,
                                             audit = args.audit] {
                    // Serial phase: every worker has arrived, so all
                    // shards closed `round_day`. Audit the lockstep
                    // property and (when enabled) the same cross-shard
                    // invariants the serial driver checks per day.
                    for (const auto &node : result.nodes)
                        SIEVE_CHECK(node->lastFinishedDay() ==
                                        round_day,
                                    "shard not in epoch lockstep: "
                                    "cursor %d, barrier day %d",
                                    node->lastFinishedDay(), round_day);
                    if (audit)
                        result.checkInvariants();
                });
            }
            for (size_t k = 0; k < n; ++k)
                if (phase[k] == Phase::AtDayEnd)
                    phase[k] = Phase::Running;
        }
    }
}

} // namespace

ShardedResult
runShardedParallel(trace::TraceReader &reader,
                   const ShardedConfig &config)
{
    ShardedResult result;
    result.nodes = makeShardNodes(config);

    const ParallelOptions &popt = config.parallel;
    if (popt.queue_depth == 0)
        util::fatal("parallel replay requires queue_depth >= 1");
    if (config.batch == 0)
        util::fatal("batched replay requires a batch size >= 1");
    const size_t workers = std::min(
        popt.threads == 0 ? config.shards : popt.threads,
        config.shards);

    // Hand-off batch: the runtime knob clamped to the queue item's
    // fixed capacity. queue_depth counts buffered *requests*, so the
    // ring's item capacity shrinks as batches grow.
    const size_t queue_batch =
        std::min(config.batch, kQueueBatchRequests);
    const size_t item_depth =
        std::max<size_t>(2, popt.queue_depth / queue_batch);

    std::vector<std::unique_ptr<ItemQueue>> queues;
    std::vector<ItemQueue *> queue_ptrs;
    queues.reserve(config.shards);
    for (size_t s = 0; s < config.shards; ++s) {
        queues.push_back(std::make_unique<ItemQueue>(item_depth));
        queue_ptrs.push_back(queues.back().get());
    }

    const bool audit = defaultCheckInvariants();
    DayBarrier barrier(workers);

    std::vector<WorkerArgs> args(workers);
    for (size_t w = 0; w < workers; ++w) {
        for (size_t s = w; s < config.shards; s += workers)
            args[w].owned.push_back(s);
        args[w].queues = &queue_ptrs;
        args[w].result = &result;
        args[w].barrier = popt.deterministic ? &barrier : nullptr;
        args[w].audit = audit;
    }

    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (size_t w = 0; w < workers; ++w)
        threads.emplace_back(runWorker, std::cref(args[w]));

    // Reader: identical day/split logic to runSharded (the shared
    // sim/batch.hpp facade), but routed into the queues instead of
    // the appliances. Items are staged directly into the ring slots
    // (pushWith), so a batch is copied exactly once — batcher bin to
    // slot, count-prefix only — and the steady state never touches
    // the heap, even while blocked on a full queue.
    auto deliver = [&](size_t shard,
                       std::span<const trace::Request> reqs) {
        // The reader thread is the sole producer for every queue.
        queue_ptrs[shard]->assertProducerRole();
        queue_ptrs[shard]->pushWith([&reqs](Item &slot) {
            slot.kind = Item::Kind::Requests;
            slot.count = static_cast<uint16_t>(reqs.size());
            std::copy(reqs.begin(), reqs.end(), slot.reqs.begin());
        });
    };
    RequestBatcher<decltype(deliver)> batcher(config.shards,
                                              queue_batch, deliver);
    try {
        pumpBatches(
            reader, config.batch,
            [&](std::span<const trace::Request> slice) {
                SIEVE_ASSERT_NO_ALLOC;
                for (const trace::Request &req : slice)
                    forEachSubrequest(
                        req, config.shards, config.seed,
                        [&batcher](size_t shard,
                                   const trace::Request &sub) {
                            batcher.add(shard, sub);
                        });
            },
            [&](int day) {
                SIEVE_ASSERT_NO_ALLOC;
                // Flush every partial batch before the marker so no
                // request is delivered after its day's boundary.
                batcher.flushAll();
                for (ItemQueue *q : queue_ptrs) {
                    q->assertProducerRole();
                    q->pushWith([day](Item &slot) {
                        slot.kind = Item::Kind::DayEnd;
                        slot.day = day;
                        slot.count = 0;
                    });
                }
            });
        {
            SIEVE_ASSERT_NO_ALLOC;
            batcher.flushAll();
        }
    } catch (...) {
        // A malformed trace (fatal in the pump) must still close the
        // queues and join the workers before unwinding, or ~thread()
        // would terminate the process.
        for (ItemQueue *q : queue_ptrs) {
            q->assertProducerRole();
            q->close();
        }
        for (std::thread &t : threads)
            t.join();
        throw;
    }
    for (ItemQueue *q : queue_ptrs) {
        q->assertProducerRole();
        q->close();
    }
    for (std::thread &t : threads)
        t.join();

    if (audit)
        result.checkInvariants();
    return result;
}

} // namespace sim
} // namespace sievestore
