/**
 * @file
 * Sharded SieveStore (the paper's Section 7 "scaling" direction).
 *
 * One appliance node ultimately saturates: the paper shows a single
 * enterprise SSD absorbs the 13-server ensemble, but a larger ensemble
 * (or a faster one) needs more nodes. The natural scale-out keeps the
 * ensemble-level sharing property by hash-partitioning the *block
 * space* — not the servers — across N appliance nodes: every node
 * still sees a uniform slice of every server's hot set, so capacity is
 * never stranded the way a per-server split strands it (observation
 * O2), while request traffic and metastate divide ~evenly.
 *
 * Requests are split at 4 KB page granularity (a page never straddles
 * nodes, so page-coalesced SSD I/O accounting is preserved).
 */

#ifndef SIEVESTORE_SIM_SHARDED_HPP
#define SIEVESTORE_SIM_SHARDED_HPP

#include <memory>
#include <vector>

#include "sim/experiment.hpp"
#include "trace/trace_reader.hpp"

namespace sievestore {
namespace sim {

/** Configuration for a sharded deployment. */
struct ShardedConfig
{
    /** Number of appliance nodes (>= 1). */
    size_t shards = 2;
    /** Per-node policy (instantiated independently per node). */
    PolicyConfig policy;
    /**
     * Per-node appliance template. cache_blocks and the SSD model are
     * per *node*: a 2-shard deployment with 8 GB nodes has 16 GB total.
     */
    core::ApplianceConfig node;
    /** Hash seed for the page -> shard mapping. */
    uint64_t seed = 0;
};

/** Outcome of a sharded run. */
struct ShardedResult
{
    /** One appliance per node, in shard order. */
    std::vector<std::unique_ptr<core::Appliance>> nodes;

    /** Reports summed across nodes. */
    core::DailyReport totals() const;
    /** Largest per-node drives-needed at the given coverage. */
    uint32_t maxDrivesAtCoverage(double coverage) const;
    /** Worst-case spread: max node accesses / mean node accesses. */
    double loadImbalance() const;

    /**
     * Audit the deployment: at least one live node, every node's own
     * invariants hold, and the summed totals are consistent (hits
     * never exceed accesses). Aborts on violation.
     */
    void checkInvariants() const;
};

/** Shard index of a block (stable page-granular hash). */
size_t shardOf(trace::BlockId block, size_t shards, uint64_t seed);

/**
 * Replay a trace through a sharded deployment. Requests are split into
 * per-shard subrequests at page granularity; day boundaries fire on
 * every node.
 */
ShardedResult runSharded(trace::TraceReader &reader,
                         const ShardedConfig &config);

} // namespace sim
} // namespace sievestore

#endif // SIEVESTORE_SIM_SHARDED_HPP
