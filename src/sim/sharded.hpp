/**
 * @file
 * Sharded SieveStore (the paper's Section 7 "scaling" direction).
 *
 * One appliance node ultimately saturates: the paper shows a single
 * enterprise SSD absorbs the 13-server ensemble, but a larger ensemble
 * (or a faster one) needs more nodes. The natural scale-out keeps the
 * ensemble-level sharing property by hash-partitioning the *block
 * space* — not the servers — across N appliance nodes: every node
 * still sees a uniform slice of every server's hot set, so capacity is
 * never stranded the way a per-server split strands it (observation
 * O2), while request traffic and metastate divide ~evenly.
 *
 * Requests are split at 4 KB page granularity (a page never straddles
 * nodes, so page-coalesced SSD I/O accounting is preserved).
 */

#ifndef SIEVESTORE_SIM_SHARDED_HPP
#define SIEVESTORE_SIM_SHARDED_HPP

#include <memory>
#include <vector>

#include "sim/experiment.hpp"
#include "trace/trace_reader.hpp"

namespace sievestore {
namespace sim {

/**
 * Compile-time cap on requests carried per parallel-replay queue item
 * (the SPSC hand-off batch). The runtime ShardedConfig::batch knob is
 * clamped to it on the queue path; larger decode batches simply span
 * several queue items.
 */
inline constexpr size_t kQueueBatchRequests = 64;

/** Options for the parallel replay engine (runShardedParallel). */
struct ParallelOptions
{
    /**
     * Worker threads (0 = one per shard). Clamped to the shard count;
     * with fewer threads than shards, shards are distributed
     * round-robin and each worker multiplexes its queues.
     */
    size_t threads = 0;
    /**
     * Requests buffered per shard queue. Divided by the hand-off
     * batch size to get the ring's item capacity (at least 2 items,
     * rounded up to a power of two), so backpressure semantics track
     * requests regardless of batching.
     */
    size_t queue_depth = 4096;
    /**
     * Lockstep mode: calendar-day barriers hold every shard at the
     * same epoch boundary, so cross-shard invariant audits (and any
     * future cross-shard coordination) observe a consistent cut of
     * the deployment. Per-node counters are bit-identical either way
     * — shards share no block state, so each node's result is a pure
     * function of its own subrequest stream — and turning this off
     * only removes the barrier stalls (free-running workers).
     */
    bool deterministic = true;
};

/** Configuration for a sharded deployment. */
struct ShardedConfig
{
    /** Number of appliance nodes (>= 1). */
    size_t shards = 2;
    /** Per-node policy (instantiated independently per node). */
    PolicyConfig policy;
    /**
     * Per-node appliance template. cache_blocks and the SSD model are
     * per *node*: a 2-shard deployment with 8 GB nodes has 16 GB total.
     */
    core::ApplianceConfig node;
    /** Hash seed for the page -> shard mapping. */
    uint64_t seed = 0;
    /**
     * Requests per batch on the replay path (decode, per-shard
     * accumulation, and — in the parallel driver — SPSC hand-off,
     * where it is capped at kQueueBatchRequests per queue item).
     * Results are independent of this value; 1 reproduces the
     * per-request hand-off.
     */
    size_t batch = trace::kDefaultBatchRequests;
    /** Parallel replay knobs (used by runShardedParallel only). */
    ParallelOptions parallel;
};

/** Outcome of a sharded run. */
struct ShardedResult
{
    /** One appliance per node, in shard order. */
    std::vector<std::unique_ptr<core::Appliance>> nodes;

    /** Reports summed across nodes. */
    core::DailyReport totals() const;
    /** Largest per-node drives-needed at the given coverage. */
    uint32_t maxDrivesAtCoverage(double coverage) const;
    /** Worst-case spread: max node accesses / mean node accesses. */
    double loadImbalance() const;

    /**
     * Audit the deployment: at least one live node, every node's own
     * invariants hold, and the summed totals are consistent (hits
     * never exceed accesses). Aborts on violation.
     */
    void checkInvariants() const;
};

/** Shard index of a block (stable page-granular hash). */
size_t shardOf(trace::BlockId block, size_t shards, uint64_t seed);

/**
 * Instantiate the per-node appliances for a sharded deployment
 * (decorrelated seeds, per-shard ADBA log directories). Shared by the
 * serial and parallel drivers so both replay against identical nodes.
 * Throws FatalError on zero shards or the oracle policy.
 */
std::vector<std::unique_ptr<core::Appliance>>
makeShardNodes(const ShardedConfig &config);

/**
 * Split one request into per-shard subrequests — maximal runs of
 * consecutive blocks mapping to the same shard — and invoke
 * fn(shard, subrequest) for each run in block order. Latency is
 * inherited; each subrequest keeps its own interpolation span, which
 * approximates the original block completion times. Zero-length
 * requests produce no subrequests. This is the single splitting
 * routine used by both replay drivers: bit-identical sharded results
 * depend on serial and parallel agreeing on it exactly.
 */
template <typename Fn>
void
forEachSubrequest(const trace::Request &req, size_t shards,
                  uint64_t seed, Fn &&fn)
{
    if (req.length_blocks == 0)
        return;
    uint32_t run_start = 0;
    size_t run_shard = shardOf(req.blockAt(0), shards, seed);
    for (uint32_t i = 1; i <= req.length_blocks; ++i) {
        const size_t shard =
            i < req.length_blocks
                ? shardOf(req.blockAt(i), shards, seed)
                : SIZE_MAX;
        if (shard == run_shard)
            continue;
        trace::Request sub = req;
        sub.offset_blocks = req.offset_blocks + run_start;
        sub.length_blocks = i - run_start;
        fn(run_shard, sub);
        run_start = i;
        run_shard = shard;
    }
}

/**
 * Replay a trace through a sharded deployment. Requests are split into
 * per-shard subrequests at page granularity; day boundaries fire on
 * every node.
 */
ShardedResult runSharded(trace::TraceReader &reader,
                         const ShardedConfig &config);

/**
 * Parallel replay: one reader thread (the caller) partitions the
 * time-ordered trace into bounded SPSC queues (util/spsc_queue.hpp);
 * ParallelOptions::threads workers drive the per-shard appliances
 * through the same day-boundary/finishDay sequence the serial driver
 * issues. Because shards share no block state and every node consumes
 * exactly the subrequest/day-marker stream runSharded would feed it,
 * the per-node DailyReports are bit-identical to runSharded's (the
 * differential tests assert this field-for-field). In deterministic
 * mode, calendar-day barriers additionally hold the shards in epoch
 * lockstep so cross-shard invariant audits see a consistent cut.
 */
ShardedResult runShardedParallel(trace::TraceReader &reader,
                                 const ShardedConfig &config);

} // namespace sim
} // namespace sievestore

#endif // SIEVESTORE_SIM_SHARDED_HPP
