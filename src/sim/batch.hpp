/**
 * @file
 * The shared batching facade of the replay drivers.
 *
 * Every driver (runTrace, runSharded, runShardedParallel,
 * runPerServer) moves requests in batches: TraceReader::nextBatch()
 * decodes N requests per virtual call, pumpBatches() slices each
 * decoded batch at calendar-day boundaries and emits day-end events
 * between slices, and RequestBatcher re-accumulates routed requests
 * (per shard, per server) into fixed-capacity bins so the downstream
 * hand-off — Appliance::processBatch, or one SPSC push — also happens
 * once per batch instead of once per request.
 *
 * Day-end flush protocol: pumpBatches() never lets a slice straddle a
 * day boundary, and drivers flush every partial RequestBatcher bin
 * *before* propagating a day-end event downstream. Batching therefore
 * changes only the grouping of the per-appliance request stream, never
 * its order or its interleaving with finishDay() — which is what the
 * differential suites (test_batch_pipeline, test_parallel_replay)
 * prove bit-identical to per-request replay.
 *
 * The single-day guarantee is also what lets processBatch run the
 * batched FlatIndex lookup kernel (probe-gather -> sieve-prefetch ->
 * decide; see DESIGN.md §12): the kernel hoists the day-report lookup
 * and arms its batch-wide no-alloc region once per slice, relying on
 * every request in the span landing in the same calendar day.
 */

#ifndef SIEVESTORE_SIM_BATCH_HPP
#define SIEVESTORE_SIM_BATCH_HPP

#include <algorithm>
#include <cstddef>
#include <span>
#include <vector>

#include "trace/trace_reader.hpp"
#include "util/logging.hpp"
#include "util/sim_time.hpp"

namespace sievestore {
namespace sim {

/**
 * Drain `reader` in decode batches of `batch` requests, slicing each
 * batch at calendar-day boundaries.
 *
 * @param on_slice   invoked with each maximal single-day run of
 *                   requests (span into an internal buffer, valid for
 *                   the duration of the call)
 * @param on_day_end invoked once per crossed day boundary, with the
 *                   day being closed, strictly between the slices it
 *                   separates (including runs of empty days)
 *
 * Fatals on a non-time-ordered trace (a request whose calendar day
 * precedes an already-seen day) and on batch == 0.
 */
template <typename OnSlice, typename OnDayEnd>
void
pumpBatches(trace::TraceReader &reader, size_t batch, OnSlice &&on_slice,
            OnDayEnd &&on_day_end)
{
    if (batch == 0)
        util::fatal("batched replay requires a batch size >= 1");
    std::vector<trace::Request> buf(batch);
    bool any = false;
    int current_day = 0;
    for (;;) {
        const size_t n = reader.nextBatch({buf.data(), buf.size()});
        if (n == 0)
            break;
        size_t start = 0;
        while (start < n) {
            const int day =
                static_cast<int>(util::dayOf(buf[start].time));
            if (!any) {
                current_day = day;
                any = true;
            } else if (day < current_day) {
                util::fatal("trace is not time-ordered (day %d after %d)",
                            day, current_day);
            }
            while (current_day < day) {
                on_day_end(current_day);
                ++current_day;
            }
            size_t end = start + 1;
            while (end < n &&
                   static_cast<int>(util::dayOf(buf[end].time)) == day)
                ++end;
            on_slice(std::span<const trace::Request>(buf.data() + start,
                                                     end - start));
            start = end;
        }
    }
}

/**
 * Fixed-capacity per-bin request accumulator: the hand-off half of the
 * facade. Requests routed to a bin (a shard, a server) are buffered
 * until the bin fills or flushAll() is called; `flush(bin, span)`
 * delivers each non-empty bin downstream. All storage is allocated at
 * construction, so add() is allocation-free and may run inside a
 * no-alloc region.
 */
template <typename Flush>
class RequestBatcher
{
  public:
    /**
     * @param bins     number of destinations
     * @param capacity requests buffered per bin before an automatic
     *                 flush (clamped to >= 1)
     * @param flush    callable (size_t bin, span<const Request>)
     */
    RequestBatcher(size_t bins, size_t capacity, Flush flush)
        : cap(std::max<size_t>(1, capacity)), flush_(std::move(flush)),
          buf(bins * cap), fill(bins, 0)
    {
    }

    /** Append one request to `bin`, flushing the bin when full. */
    void
    add(size_t bin, const trace::Request &req)
    {
        trace::Request *base = buf.data() + bin * cap;
        base[fill[bin]++] = req;
        if (fill[bin] == cap)
            flushBin(bin);
    }

    /**
     * Flush every partially-filled bin. Drivers call this before every
     * day-end event and at end of trace, so no request is ever held
     * across a finishDay() and bins never mix calendar days.
     */
    void
    flushAll()
    {
        for (size_t bin = 0; bin < fill.size(); ++bin)
            flushBin(bin);
    }

  private:
    void
    flushBin(size_t bin)
    {
        if (fill[bin] == 0)
            return;
        flush_(bin, std::span<const trace::Request>(
                        buf.data() + bin * cap, fill[bin]));
        fill[bin] = 0;
    }

    size_t cap;
    Flush flush_;
    std::vector<trace::Request> buf;
    std::vector<size_t> fill;
};

} // namespace sim
} // namespace sievestore

#endif // SIEVESTORE_SIM_BATCH_HPP
