#include "sim/sharded.hpp"

#include <algorithm>

#include "sim/batch.hpp"
#include "sim/driver.hpp"
#include "util/check.hpp"
#include "util/hashing.hpp"
#include "util/logging.hpp"
#include "util/sim_time.hpp"

namespace sievestore {
namespace sim {

core::DailyReport
ShardedResult::totals() const
{
    core::DailyReport sum;
    for (const auto &node : nodes)
        sum.add(node->totals());
    return sum;
}

uint32_t
ShardedResult::maxDrivesAtCoverage(double coverage) const
{
    uint32_t worst = 0;
    for (const auto &node : nodes) {
        const auto *occ = node->occupancy();
        if (occ)
            worst = std::max(worst, occ->drivesForCoverage(coverage));
    }
    return worst;
}

double
ShardedResult::loadImbalance() const
{
    if (nodes.empty())
        return 0.0;
    uint64_t max_accesses = 0, total = 0;
    for (const auto &node : nodes) {
        const uint64_t a = node->totals().accesses;
        max_accesses = std::max(max_accesses, a);
        total += a;
    }
    if (total == 0)
        return 1.0;
    const double mean =
        static_cast<double>(total) / static_cast<double>(nodes.size());
    return static_cast<double>(max_accesses) / mean;
}

void
ShardedResult::checkInvariants() const
{
    SIEVE_CHECK(!nodes.empty(), "sharded deployment has no nodes");
    for (const auto &node : nodes) {
        SIEVE_CHECK(node != nullptr);
        node->checkInvariants();
    }
    const core::DailyReport sum = totals();
    SIEVE_CHECK(sum.hits <= sum.accesses);
    SIEVE_CHECK(sum.read_hits + sum.write_hits == sum.hits);
}

size_t
shardOf(trace::BlockId block, size_t shards, uint64_t seed)
{
    // Page-granular so a 4 KB unit never straddles nodes.
    const uint64_t key =
        (static_cast<uint64_t>(trace::volumeOf(block)) << 48) |
        trace::pageOf(block);
    return static_cast<size_t>(
        util::reduceRange(util::seededHash(key, seed), shards));
}

std::vector<std::unique_ptr<core::Appliance>>
makeShardNodes(const ShardedConfig &config)
{
    if (config.shards == 0)
        util::fatal("sharded deployment requires at least one node");
    if (config.policy.kind == PolicyKind::Ideal)
        util::fatal("sharded runs do not support the oracle policy");

    std::vector<std::unique_ptr<core::Appliance>> nodes;
    nodes.reserve(config.shards);
    for (size_t s = 0; s < config.shards; ++s) {
        PolicyConfig pc = config.policy;
        pc.seed += s;
        pc.sieve_c.seed += s; // decorrelate the nodes' IMCTs
        if (pc.adba_disk_log)
            pc.adba_log_dir += "/shard" + std::to_string(s);
        nodes.push_back(makeAppliance(pc, config.node));
    }
    return nodes;
}

ShardedResult
runSharded(trace::TraceReader &reader, const ShardedConfig &config)
{
    ShardedResult result;
    result.nodes = makeShardNodes(config);

    const bool audit = defaultCheckInvariants();

    // Per-shard accumulation: subrequests buffer until a shard's bin
    // fills or a day ends, then hit that node as one processBatch.
    // Each node still consumes exactly the subrequest stream the
    // per-request driver would feed it, in the same order.
    auto deliver = [&result](size_t shard,
                             std::span<const trace::Request> reqs) {
        result.nodes[shard]->processBatch(reqs);
    };
    RequestBatcher<decltype(deliver)> batcher(config.shards,
                                              config.batch, deliver);

    pumpBatches(
        reader, config.batch,
        [&](std::span<const trace::Request> slice) {
            for (const trace::Request &req : slice)
                forEachSubrequest(
                    req, config.shards, config.seed,
                    [&batcher](size_t shard, const trace::Request &sub) {
                        batcher.add(shard, sub);
                    });
        },
        [&](int day) {
            batcher.flushAll();
            for (auto &node : result.nodes)
                node->finishDay(day);
            if (audit)
                result.checkInvariants();
        });
    batcher.flushAll();
    for (auto &node : result.nodes)
        node->finishTrace();
    if (audit)
        result.checkInvariants();
    return result;
}

} // namespace sim
} // namespace sievestore
