#include "sim/storage_report.hpp"

#include <cstdio>

#include "storage/analytic_backend.hpp"

namespace sievestore {
namespace sim {

StorageLatencySummary
storageLatencySummary(const core::DailyReport &rep,
                      const ssd::SsdModel &ssd)
{
    StorageLatencySummary out;
    out.measured_ios = rep.storage_read_ios + rep.storage_write_ios;
    out.errors =
        rep.storage_read_errors + rep.storage_write_errors;
    out.measured_ns = rep.storage_read_ns + rep.storage_write_ns;
    out.predicted_ns =
        rep.storage_read_ios *
            storage::modelServiceNs(ssd.readService()) +
        rep.storage_write_ios *
            storage::modelServiceNs(ssd.writeService());
    out.ratio = out.predicted_ns
                    ? static_cast<double>(out.measured_ns) /
                          static_cast<double>(out.predicted_ns)
                    : 0.0;
    return out;
}

std::string
storageRatioCell(const StorageLatencySummary &s)
{
    if (s.measured_ios == 0)
        return "-";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3f", s.ratio);
    return buf;
}

} // namespace sim
} // namespace sievestore
