/**
 * @file
 * Popularity-skew variation metrics (Section 2, Figure 3).
 *
 * Figure 3(d) decomposes the ensemble's most popular 1 % of blocks by
 * contributing server, per day; Figures 3(a)-(c) compare cumulative
 * access distributions across servers, volumes, and days. The CDF
 * machinery lives in PopularityProfile; this header adds the
 * decomposition and a scalar skew metric used in tests.
 */

#ifndef SIEVESTORE_ANALYSIS_SKEW_HPP
#define SIEVESTORE_ANALYSIS_SKEW_HPP

#include <vector>

#include "analysis/popularity.hpp"
#include "trace/ensemble.hpp"

namespace sievestore {
namespace analysis {

/**
 * Fraction of the ensemble's most popular `fraction` of blocks
 * contributed by each server (indexed by ServerId; sums to 1 when any
 * blocks qualify).
 */
std::vector<double>
serverCompositionOfTop(const PopularityProfile &profile,
                       const trace::EnsembleConfig &ensemble,
                       double fraction = 0.01);

/**
 * Gini coefficient of the access-count distribution: 0 = every accessed
 * block equally popular, ->1 = all accesses on a vanishing fraction of
 * blocks. A compact scalar for "how skewed is this server/volume/day",
 * used by the O2 property tests (Prxy must be far more skewed than
 * Src1, etc.).
 */
double giniOfCounts(const PopularityProfile &profile);

/**
 * Jaccard similarity of two block sets (|A intersect B| / |A union B|).
 * Measures day-to-day hot-set drift: the paper notes "significant
 * overlap in successive days" but drift "with increasing time
 * separation".
 */
double jaccard(const std::vector<trace::BlockId> &a,
               const std::vector<trace::BlockId> &b);

} // namespace analysis
} // namespace sievestore

#endif // SIEVESTORE_ANALYSIS_SKEW_HPP
