/**
 * @file
 * In-memory per-block access counting.
 *
 * The trace characterization of Section 2 and the ideal/discrete sieves
 * of Section 3 all reduce a day of accesses to per-block counts. This is
 * the in-memory counter; the file-backed, map-reduce-like counter that
 * SieveStore-D's appliance would really run is in access_log.hpp.
 */

#ifndef SIEVESTORE_ANALYSIS_ACCESS_COUNTER_HPP
#define SIEVESTORE_ANALYSIS_ACCESS_COUNTER_HPP

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "trace/request.hpp"

namespace sievestore {
namespace analysis {

/** Per-block access counts, keyed by BlockId. */
using BlockCounts = std::unordered_map<trace::BlockId, uint64_t>;

/** A (block, count) pair, the unit the sieving reductions emit. */
struct BlockCount
{
    trace::BlockId block;
    uint64_t count;
};

/** Count the per-block accesses of a batch of requests. */
BlockCounts countBlockAccesses(const std::vector<trace::Request> &requests);

/** Total accesses recorded in a count map. */
uint64_t totalAccesses(const BlockCounts &counts);

/**
 * Flatten a count map, sorted by descending count (ties broken by
 * BlockId for determinism).
 */
std::vector<BlockCount> sortedByCount(const BlockCounts &counts);

} // namespace analysis
} // namespace sievestore

#endif // SIEVESTORE_ANALYSIS_ACCESS_COUNTER_HPP
