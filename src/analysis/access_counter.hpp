/**
 * @file
 * In-memory per-block access counting.
 *
 * The trace characterization of Section 2 and the ideal/discrete sieves
 * of Section 3 all reduce a day of accesses to per-block counts. This is
 * the in-memory counter; the file-backed, map-reduce-like counter that
 * SieveStore-D's appliance would really run is in access_log.hpp.
 */

#ifndef SIEVESTORE_ANALYSIS_ACCESS_COUNTER_HPP
#define SIEVESTORE_ANALYSIS_ACCESS_COUNTER_HPP

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "trace/request.hpp"
#include "util/flat_index.hpp"

namespace sievestore {
namespace analysis {

/** Per-block access counts, keyed by BlockId. */
using BlockCounts = std::unordered_map<trace::BlockId, uint64_t>;

/** A (block, count) pair, the unit the sieving reductions emit. */
struct BlockCount
{
    trace::BlockId block;
    uint64_t count;
};

/** Count the per-block accesses of a batch of requests. */
BlockCounts countBlockAccesses(const std::vector<trace::Request> &requests);

/** Total accesses recorded in a count map. */
uint64_t totalAccesses(const BlockCounts &counts);

/**
 * Flatten a count map, sorted by descending count (ties broken by
 * BlockId for determinism).
 */
std::vector<BlockCount> sortedByCount(const BlockCounts &counts);

/** Sort (block, count) pairs descending by count, ascending BlockId. */
void sortDescendingByCount(std::vector<BlockCount> &counts);

/**
 * Per-block access counter on the flat block index
 * (util/flat_index.hpp): one open-addressing probe per observation
 * instead of a node-based unordered_map insert. This is the counting
 * state of the discrete selectors (SieveStore-D's in-memory ADBA
 * backend and the ablation selectors); reserve() lets the driver
 * pre-size it for the expected epoch population so steady-state
 * observation never rehashes, and clear() keeps the slot array so
 * epoch boundaries do not re-grow from scratch.
 */
class AccessCounter
{
  public:
    AccessCounter() = default;

    /** Pre-sized for `expected_blocks` distinct blocks. */
    explicit AccessCounter(size_t expected_blocks);

    /** Grow so `expected_blocks` distinct blocks fit rehash-free. */
    void reserve(size_t expected_blocks);

    /** Record one access to `block`. */
    void observe(trace::BlockId block);

    /**
     * Record one access to each block, hash-ahead style: every home
     * slot is prefetched before the first counter bump, hiding the
     * table's DRAM latency across the batch. Counts are commutative,
     * so the result is identical to observing in any order.
     */
    void observeBatch(std::span<const trace::BlockId> blocks);

    /** Access count of `block` (0 if never observed). */
    uint64_t count(trace::BlockId block) const;

    /** Distinct blocks observed this epoch. */
    size_t uniqueBlocks() const { return counts_.size(); }
    bool empty() const { return counts_.empty(); }

    /** Sum of all counts. */
    uint64_t totalAccesses() const;

    /** All (block, count) pairs, descending count / ascending block. */
    std::vector<BlockCount> sortedByCount() const;

    /** Pairs with count >= threshold, same deterministic order. */
    std::vector<BlockCount> countsAtLeast(uint64_t threshold) const;

    /** Observed blocks in ascending BlockId order. */
    std::vector<trace::BlockId> sortedBlocks() const;

    /** Drop all counts but keep the slot array (epoch boundary). */
    void clear() { counts_.clear(); }

    /** Metastate footprint (util/footprint.hpp convention). */
    uint64_t memoryBytes() const { return counts_.memoryBytes(); }

    /** Audit the underlying table; aborts on violation. */
    void checkInvariants() const { counts_.checkInvariants(); }

  private:
    util::FlatIndex<uint64_t> counts_;
};

} // namespace analysis
} // namespace sievestore

#endif // SIEVESTORE_ANALYSIS_ACCESS_COUNTER_HPP
