/**
 * @file
 * Popularity-skew characterization (Section 2, Figures 2 and 3).
 *
 * For one day of per-block access counts, blocks are sorted by
 * descending popularity and grouped into up to 10,000 equal-population
 * bins (0.01 % of that day's accessed blocks per bin, exactly as the
 * paper does). The profile exposes per-bin average counts (Fig. 2(a)),
 * the cumulative access share at each percentile (Fig. 2(b)/(c)), and
 * threshold/selection queries used throughout the evaluation.
 */

#ifndef SIEVESTORE_ANALYSIS_POPULARITY_HPP
#define SIEVESTORE_ANALYSIS_POPULARITY_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

#include "analysis/access_counter.hpp"

namespace sievestore {
namespace analysis {

/** Ranked, binned popularity profile for one set of block counts. */
class PopularityProfile
{
  public:
    /**
     * @param counts per-block access counts
     * @param bins   maximum bin count (paper: 10,000); fewer blocks
     *               than bins yields one block per bin
     */
    explicit PopularityProfile(const BlockCounts &counts,
                               size_t bins = 10000);

    /**
     * Build from already-flattened (block, count) pairs, e.g. an
     * AccessCounter's sortedByCount(). The pairs are (re)sorted into
     * the canonical descending-count order; blocks must be distinct.
     */
    explicit PopularityProfile(std::vector<BlockCount> counts,
                               size_t bins = 10000);

    /** Distinct blocks accessed. */
    uint64_t uniqueBlocks() const { return unique; }
    /** Total accesses. */
    uint64_t totalAccesses() const { return total; }

    size_t binCount() const { return bin_sums.size(); }

    /** Mean access count of blocks in bin i (bin 0 is most popular). */
    double binAverage(size_t i) const;

    /** Upper percentile rank of bin i, in (0, 1]. */
    double binPercentile(size_t i) const;

    /**
     * Fraction of all accesses contributed by the most popular
     * `fraction` of blocks (e.g. 0.01 = the top 1 %). Resolves at block
     * (not bin) granularity.
     */
    double topShare(double fraction) const;

    /** Access count of the block at percentile rank `fraction`. */
    uint64_t countAtPercentile(double fraction) const;

    /** Fraction of blocks with count <= limit. */
    double fractionWithCountAtMost(uint64_t limit) const;

    /** Most popular `fraction` of blocks, ties broken by BlockId. */
    std::vector<trace::BlockId> topBlocks(double fraction) const;

    /** All blocks with count >= threshold. */
    std::vector<trace::BlockId> blocksWithCountAtLeast(uint64_t t) const;

    /** Descending-count view of the underlying blocks. */
    const std::vector<BlockCount> &ranked() const { return ranked_; }

  private:
    /** Shared constructor tail: ranked_ is sorted; fill the bins. */
    void build(size_t bins);

    std::vector<BlockCount> ranked_;
    std::vector<uint64_t> bin_sums;
    std::vector<uint64_t> bin_sizes;
    /** cum_accesses[i] = accesses of ranks [0, i]. */
    std::vector<uint64_t> cum_accesses;
    uint64_t unique = 0;
    uint64_t total = 0;
};

} // namespace analysis
} // namespace sievestore

#endif // SIEVESTORE_ANALYSIS_POPULARITY_HPP
