#include "analysis/access_counter.hpp"

#include <algorithm>

#include "util/alloc_guard.hpp"

namespace sievestore {
namespace analysis {

BlockCounts
countBlockAccesses(const std::vector<trace::Request> &requests)
{
    BlockCounts counts;
    for (const auto &req : requests)
        for (uint32_t i = 0; i < req.length_blocks; ++i)
            ++counts[req.blockAt(i)];
    return counts;
}

uint64_t
totalAccesses(const BlockCounts &counts)
{
    uint64_t total = 0;
    for (const auto &kv : counts)
        total += kv.second;
    return total;
}

void
sortDescendingByCount(std::vector<BlockCount> &counts)
{
    std::sort(counts.begin(), counts.end(),
              [](const BlockCount &a, const BlockCount &b) {
                  if (a.count != b.count)
                      return a.count > b.count;
                  return a.block < b.block;
              });
}

std::vector<BlockCount>
sortedByCount(const BlockCounts &counts)
{
    std::vector<BlockCount> out;
    out.reserve(counts.size());
    for (const auto &kv : counts)
        out.push_back(BlockCount{kv.first, kv.second});
    sortDescendingByCount(out);
    return out;
}

AccessCounter::AccessCounter(size_t expected_blocks)
    : counts_(expected_blocks)
{
}

void
AccessCounter::reserve(size_t expected_blocks)
{
    counts_.reserve(expected_blocks);
}

void
AccessCounter::observe(trace::BlockId block)
{
    // A driver that called reserveEpochBlocks() sized the table for
    // the epoch population; while that headroom lasts, observation
    // must be a pure probe. Unreserved use may still grow the table.
    SIEVE_ASSERT_NO_ALLOC_WHEN(counts_.hasCapacityFor(1));
    ++*counts_.findOrInsert(block).first;
}

void
AccessCounter::observeBatch(std::span<const trace::BlockId> blocks)
{
    // Hash-ahead: every home slot's lines start toward L1 before the
    // first findOrInsert issues its dependent load. The bumps then run
    // in batch order — counts are commutative, so any order matches
    // N scalar observe() calls; in-order keeps the table's insert
    // history (and thus slot layout) bit-identical too.
    for (const trace::BlockId block : blocks)
        counts_.prefetch(block);
    for (const trace::BlockId block : blocks)
        observe(block);
}

// SIEVE_NOALLOC: reads are pure probes; the analyzer proves the
// whole call tree below is allocation-free.
SIEVE_NOALLOC uint64_t
AccessCounter::count(trace::BlockId block) const
{
    const uint64_t *c = counts_.find(block);
    return c ? *c : 0;
}

uint64_t
AccessCounter::totalAccesses() const
{
    uint64_t total = 0;
    counts_.forEach([&](uint64_t, const uint64_t &c) { total += c; });
    return total;
}

std::vector<BlockCount>
AccessCounter::sortedByCount() const
{
    return countsAtLeast(0);
}

std::vector<BlockCount>
AccessCounter::countsAtLeast(uint64_t threshold) const
{
    std::vector<BlockCount> out;
    out.reserve(counts_.size());
    counts_.forEach([&](uint64_t block, const uint64_t &c) {
        if (c >= threshold)
            out.push_back(BlockCount{block, c});
    });
    sortDescendingByCount(out);
    return out;
}

std::vector<trace::BlockId>
AccessCounter::sortedBlocks() const
{
    std::vector<trace::BlockId> out;
    out.reserve(counts_.size());
    counts_.forEach([&](uint64_t block, const uint64_t &) {
        out.push_back(block);
    });
    std::sort(out.begin(), out.end());
    return out;
}

} // namespace analysis
} // namespace sievestore
