#include "analysis/access_counter.hpp"

#include <algorithm>

namespace sievestore {
namespace analysis {

BlockCounts
countBlockAccesses(const std::vector<trace::Request> &requests)
{
    BlockCounts counts;
    for (const auto &req : requests)
        for (uint32_t i = 0; i < req.length_blocks; ++i)
            ++counts[req.blockAt(i)];
    return counts;
}

uint64_t
totalAccesses(const BlockCounts &counts)
{
    uint64_t total = 0;
    for (const auto &kv : counts)
        total += kv.second;
    return total;
}

std::vector<BlockCount>
sortedByCount(const BlockCounts &counts)
{
    std::vector<BlockCount> out;
    out.reserve(counts.size());
    for (const auto &kv : counts)
        out.push_back(BlockCount{kv.first, kv.second});
    std::sort(out.begin(), out.end(),
              [](const BlockCount &a, const BlockCount &b) {
                  if (a.count != b.count)
                      return a.count > b.count;
                  return a.block < b.block;
              });
    return out;
}

} // namespace analysis
} // namespace sievestore
