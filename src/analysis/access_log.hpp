/**
 * @file
 * File-backed, map-reduce-like access counting (Section 3.2).
 *
 * SieveStore-D "logs all accesses for offline analysis. The analysis
 * requires simple, per-key reductions ... (1) each access is logged as a
 * <address, 1> tuple to one of R files where the file is selected by a
 * hash-function on the address, (2) each of the R files are sorted, and
 * (3) contiguous n-long runs of the same address are counted and emitted
 * as an <address, n> tuple. Further, such per-key reductions may be
 * periodically performed in an incremental way to reduce the size of the
 * logs."
 *
 * AccessLog implements exactly that: raw 8-byte address appends into R
 * hash-selected partition files, incremental compaction that sorts the
 * raw tail and merges it with the partition's sorted (address, count)
 * run file, and an epoch-end reduction that emits all blocks whose count
 * meets the allocation threshold. Memory use is bounded by one
 * partition's working set, never by the epoch's total unique blocks —
 * the property that lets SieveStore-D keep its metastate off the access
 * critical path.
 */

#ifndef SIEVESTORE_ANALYSIS_ACCESS_LOG_HPP
#define SIEVESTORE_ANALYSIS_ACCESS_LOG_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/access_counter.hpp"
#include "trace/block.hpp"

namespace sievestore {
namespace analysis {

/** Tunables for the on-disk access log. */
struct AccessLogConfig
{
    /** Number of hash partitions (the paper's R files). */
    size_t partitions = 16;
    /**
     * Raw addresses buffered in memory per partition before being
     * flushed to the partition's raw file.
     */
    size_t flush_threshold = 1 << 16;
    /**
     * Raw bytes on disk in one partition that trigger incremental
     * compaction into the sorted run file.
     */
    uint64_t compact_threshold_bytes = 16ULL << 20;
};

/**
 * Epoch-scoped disk-backed access counter.
 *
 * Usage: log() every access during the epoch; at the epoch boundary call
 * reduce(threshold) to obtain the blocks to batch-allocate, then
 * beginEpoch() to reset for the next epoch.
 */
class AccessLog
{
  public:
    /**
     * @param directory scratch directory for partition files (created
     *                  if absent)
     * @param config    partitioning and compaction tunables
     */
    AccessLog(const std::string &directory, AccessLogConfig config = {});

    ~AccessLog();

    AccessLog(const AccessLog &) = delete;
    AccessLog &operator=(const AccessLog &) = delete;

    /** Record one access (the paper's <address, 1> tuple). */
    void log(trace::BlockId block);

    /**
     * Incrementally compact any partition whose raw log exceeds the
     * threshold. Called internally by log(); exposed so tests and the
     * appliance can force compaction at idle periods.
     */
    void compactIfNeeded();

    /** Force compaction of every partition. */
    void compactAll();

    /**
     * Epoch-end reduction: all blocks whose epoch access count is
     * >= threshold, in descending count order.
     */
    std::vector<BlockCount> reduce(uint64_t threshold);

    /** Discard all state and start a new epoch. */
    void beginEpoch();

    /** Accesses logged this epoch. */
    uint64_t logged() const { return logged_count; }

    /** Total bytes currently on disk across partitions. */
    uint64_t diskBytes() const;

  private:
    struct Partition
    {
        std::string raw_path;
        std::string run_path;
        std::vector<trace::BlockId> buffer;
        uint64_t raw_bytes = 0;
        bool has_run = false;
    };

    size_t partitionOf(trace::BlockId block) const;
    void flushBuffer(Partition &p);
    void compactPartition(Partition &p);

    /** Sorted (block, count) content of a partition (merged view). */
    std::vector<BlockCount> partitionCounts(Partition &p);

    std::string dir;
    AccessLogConfig config;
    std::vector<Partition> parts;
    uint64_t logged_count = 0;
};

} // namespace analysis
} // namespace sievestore

#endif // SIEVESTORE_ANALYSIS_ACCESS_LOG_HPP
