#include "analysis/popularity.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"

namespace sievestore {
namespace analysis {

PopularityProfile::PopularityProfile(const BlockCounts &counts, size_t bins)
{
    ranked_ = sortedByCount(counts);
    build(bins);
}

PopularityProfile::PopularityProfile(std::vector<BlockCount> counts,
                                     size_t bins)
{
    ranked_ = std::move(counts);
    sortDescendingByCount(ranked_);
    build(bins);
}

void
PopularityProfile::build(size_t bins)
{
    unique = ranked_.size();

    cum_accesses.resize(unique);
    uint64_t running = 0;
    for (size_t i = 0; i < unique; ++i) {
        running += ranked_[i].count;
        cum_accesses[i] = running;
    }
    total = running;

    if (unique == 0)
        return;
    const size_t b = std::min(bins, static_cast<size_t>(unique));
    bin_sums.assign(b, 0);
    bin_sizes.assign(b, 0);
    for (size_t i = 0; i < unique; ++i) {
        // Bin index via integer arithmetic: rank i of n maps to
        // floor(i * b / n), giving equal-population bins.
        const size_t bin = static_cast<size_t>(
            (static_cast<__uint128_t>(i) * b) / unique);
        bin_sums[bin] += ranked_[i].count;
        ++bin_sizes[bin];
    }
}

double
PopularityProfile::binAverage(size_t i) const
{
    if (i >= bin_sums.size())
        util::panic("bin index %zu out of range", i);
    return bin_sizes[i]
               ? static_cast<double>(bin_sums[i]) /
                     static_cast<double>(bin_sizes[i])
               : 0.0;
}

double
PopularityProfile::binPercentile(size_t i) const
{
    if (bin_sums.empty())
        return 0.0;
    return static_cast<double>(i + 1) /
           static_cast<double>(bin_sums.size());
}

double
PopularityProfile::topShare(double fraction) const
{
    if (unique == 0 || total == 0)
        return 0.0;
    if (fraction <= 0.0)
        return 0.0;
    size_t k = static_cast<size_t>(
        std::floor(fraction * static_cast<double>(unique)));
    if (k == 0)
        k = 1;
    if (k > unique)
        k = unique;
    return static_cast<double>(cum_accesses[k - 1]) /
           static_cast<double>(total);
}

uint64_t
PopularityProfile::countAtPercentile(double fraction) const
{
    if (unique == 0)
        return 0;
    size_t k = static_cast<size_t>(
        std::floor(fraction * static_cast<double>(unique)));
    if (k == 0)
        k = 1;
    if (k > unique)
        k = unique;
    return ranked_[k - 1].count;
}

double
PopularityProfile::fractionWithCountAtMost(uint64_t limit) const
{
    if (unique == 0)
        return 0.0;
    // ranked_ is descending; find the first index with count <= limit.
    const auto it = std::lower_bound(
        ranked_.begin(), ranked_.end(), limit,
        [](const BlockCount &bc, uint64_t lim) { return bc.count > lim; });
    return static_cast<double>(ranked_.end() - it) /
           static_cast<double>(unique);
}

std::vector<trace::BlockId>
PopularityProfile::topBlocks(double fraction) const
{
    std::vector<trace::BlockId> out;
    if (unique == 0 || fraction <= 0.0)
        return out;
    size_t k = static_cast<size_t>(
        std::floor(fraction * static_cast<double>(unique)));
    if (k == 0)
        k = 1;
    if (k > unique)
        k = unique;
    out.reserve(k);
    for (size_t i = 0; i < k; ++i)
        out.push_back(ranked_[i].block);
    return out;
}

std::vector<trace::BlockId>
PopularityProfile::blocksWithCountAtLeast(uint64_t t) const
{
    std::vector<trace::BlockId> out;
    for (const auto &bc : ranked_) {
        if (bc.count < t)
            break;
        out.push_back(bc.block);
    }
    return out;
}

} // namespace analysis
} // namespace sievestore
