#include "analysis/skew.hpp"

#include <algorithm>
#include <unordered_set>

namespace sievestore {
namespace analysis {

std::vector<double>
serverCompositionOfTop(const PopularityProfile &profile,
                       const trace::EnsembleConfig &ensemble,
                       double fraction)
{
    std::vector<double> shares(ensemble.serverCount(), 0.0);
    const auto top = profile.topBlocks(fraction);
    if (top.empty())
        return shares;
    for (trace::BlockId b : top) {
        const auto &vol = ensemble.volume(trace::volumeOf(b));
        shares[vol.server] += 1.0;
    }
    for (double &s : shares)
        s /= static_cast<double>(top.size());
    return shares;
}

double
giniOfCounts(const PopularityProfile &profile)
{
    const auto &ranked = profile.ranked();
    const size_t n = ranked.size();
    if (n == 0)
        return 0.0;
    // ranked is descending; Gini over the ascending sequence:
    // G = (2 * sum(i * x_i) / (n * sum(x)) ) - (n + 1) / n, i in 1..n.
    double weighted = 0.0;
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) {
        // ascending index of ranked[n-1-i] is i+1
        const double x = static_cast<double>(ranked[n - 1 - i].count);
        weighted += static_cast<double>(i + 1) * x;
        total += x;
    }
    if (total == 0.0)
        return 0.0;
    const double dn = static_cast<double>(n);
    return 2.0 * weighted / (dn * total) - (dn + 1.0) / dn;
}

double
jaccard(const std::vector<trace::BlockId> &a,
        const std::vector<trace::BlockId> &b)
{
    if (a.empty() && b.empty())
        return 1.0;
    std::unordered_set<trace::BlockId> sa(a.begin(), a.end());
    size_t inter = 0;
    std::unordered_set<trace::BlockId> sb;
    sb.reserve(b.size());
    for (trace::BlockId x : b) {
        if (sb.insert(x).second && sa.count(x))
            ++inter;
    }
    const size_t uni = sa.size() + sb.size() - inter;
    return uni ? static_cast<double>(inter) / static_cast<double>(uni) : 1.0;
}

} // namespace analysis
} // namespace sievestore
