#include "analysis/access_log.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "util/hashing.hpp"
#include "util/logging.hpp"

namespace sievestore {
namespace analysis {

namespace fs = std::filesystem;
using trace::BlockId;

namespace {

/** Append raw 8-byte block ids to a file. */
void
appendRaw(const std::string &path, const std::vector<BlockId> &ids)
{
    std::ofstream out(path, std::ios::binary | std::ios::app);
    if (!out)
        util::fatal("access log: cannot append to '%s'", path.c_str());
    out.write(reinterpret_cast<const char *>(ids.data()),
              static_cast<std::streamsize>(ids.size() * sizeof(BlockId)));
    if (!out)
        util::fatal("access log: short write to '%s'", path.c_str());
}

/** Read an entire raw file of 8-byte block ids. */
std::vector<BlockId>
readRaw(const std::string &path)
{
    std::vector<BlockId> ids;
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    if (!in)
        return ids;
    const auto bytes = static_cast<uint64_t>(in.tellg());
    ids.resize(bytes / sizeof(BlockId));
    in.seekg(0);
    in.read(reinterpret_cast<char *>(ids.data()),
            static_cast<std::streamsize>(ids.size() * sizeof(BlockId)));
    if (!in)
        util::fatal("access log: short read from '%s'", path.c_str());
    return ids;
}

/** Read a sorted run file of (block, count) records. */
std::vector<BlockCount>
readRun(const std::string &path)
{
    std::vector<BlockCount> run;
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    if (!in)
        return run;
    const auto bytes = static_cast<uint64_t>(in.tellg());
    const size_t records = bytes / (2 * sizeof(uint64_t));
    run.reserve(records);
    in.seekg(0);
    for (size_t i = 0; i < records; ++i) {
        uint64_t block = 0, count = 0;
        in.read(reinterpret_cast<char *>(&block), sizeof(block));
        in.read(reinterpret_cast<char *>(&count), sizeof(count));
        run.push_back(BlockCount{block, count});
    }
    if (!in)
        util::fatal("access log: short read from '%s'", path.c_str());
    return run;
}

/** Write a sorted run file of (block, count) records. */
void
writeRun(const std::string &path, const std::vector<BlockCount> &run)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        util::fatal("access log: cannot write '%s'", path.c_str());
    for (const auto &bc : run) {
        out.write(reinterpret_cast<const char *>(&bc.block),
                  sizeof(bc.block));
        out.write(reinterpret_cast<const char *>(&bc.count),
                  sizeof(bc.count));
    }
    if (!out)
        util::fatal("access log: short write to '%s'", path.c_str());
}

/**
 * Count contiguous runs of equal addresses in a sorted raw vector (the
 * paper's step (3)) and merge with an existing sorted run.
 */
std::vector<BlockCount>
mergeRuns(const std::vector<BlockCount> &a, const std::vector<BlockCount> &b)
{
    std::vector<BlockCount> out;
    out.reserve(a.size() + b.size());
    size_t i = 0, j = 0;
    while (i < a.size() || j < b.size()) {
        if (j >= b.size() || (i < a.size() && a[i].block < b[j].block)) {
            out.push_back(a[i++]);
        } else if (i >= a.size() || b[j].block < a[i].block) {
            out.push_back(b[j++]);
        } else {
            out.push_back(BlockCount{a[i].block,
                                     a[i].count + b[j].count});
            ++i;
            ++j;
        }
    }
    return out;
}

std::vector<BlockCount>
runLengthCount(std::vector<BlockId> &raw)
{
    std::sort(raw.begin(), raw.end());
    std::vector<BlockCount> out;
    size_t i = 0;
    while (i < raw.size()) {
        size_t j = i;
        while (j < raw.size() && raw[j] == raw[i])
            ++j;
        out.push_back(BlockCount{raw[i], j - i});
        i = j;
    }
    return out;
}

} // namespace

AccessLog::AccessLog(const std::string &directory, AccessLogConfig cfg)
    : dir(directory), config(cfg)
{
    if (config.partitions == 0)
        util::fatal("access log requires at least one partition");
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec)
        util::fatal("access log: cannot create directory '%s': %s",
                    dir.c_str(), ec.message().c_str());
    parts.resize(config.partitions);
    for (size_t i = 0; i < parts.size(); ++i) {
        parts[i].raw_path = dir + "/part" + std::to_string(i) + ".raw";
        parts[i].run_path = dir + "/part" + std::to_string(i) + ".run";
    }
    beginEpoch();
}

AccessLog::~AccessLog()
{
    std::error_code ec;
    for (auto &p : parts) {
        fs::remove(p.raw_path, ec);
        fs::remove(p.run_path, ec);
    }
}

size_t
AccessLog::partitionOf(BlockId block) const
{
    return static_cast<size_t>(
        util::reduceRange(util::mix64(block), parts.size()));
}

void
AccessLog::log(BlockId block)
{
    Partition &p = parts[partitionOf(block)];
    p.buffer.push_back(block);
    ++logged_count;
    if (p.buffer.size() >= config.flush_threshold) {
        flushBuffer(p);
        if (p.raw_bytes >= config.compact_threshold_bytes)
            compactPartition(p);
    }
}

void
AccessLog::flushBuffer(Partition &p)
{
    if (p.buffer.empty())
        return;
    appendRaw(p.raw_path, p.buffer);
    p.raw_bytes += p.buffer.size() * sizeof(BlockId);
    p.buffer.clear();
}

void
AccessLog::compactPartition(Partition &p)
{
    flushBuffer(p);
    std::vector<BlockId> raw = readRaw(p.raw_path);
    if (raw.empty() && !p.has_run)
        return;
    std::vector<BlockCount> fresh = runLengthCount(raw);
    raw.clear();
    raw.shrink_to_fit();
    std::vector<BlockCount> merged =
        p.has_run ? mergeRuns(readRun(p.run_path), fresh) : std::move(fresh);
    writeRun(p.run_path, merged);
    p.has_run = true;
    std::error_code ec;
    fs::remove(p.raw_path, ec);
    p.raw_bytes = 0;
}

void
AccessLog::compactIfNeeded()
{
    for (auto &p : parts) {
        if (p.raw_bytes + p.buffer.size() * sizeof(BlockId) >=
            config.compact_threshold_bytes) {
            compactPartition(p);
        }
    }
}

void
AccessLog::compactAll()
{
    for (auto &p : parts)
        compactPartition(p);
}

std::vector<BlockCount>
AccessLog::partitionCounts(Partition &p)
{
    compactPartition(p);
    return p.has_run ? readRun(p.run_path) : std::vector<BlockCount>{};
}

std::vector<BlockCount>
AccessLog::reduce(uint64_t threshold)
{
    std::vector<BlockCount> selected;
    for (auto &p : parts) {
        for (const auto &bc : partitionCounts(p))
            if (bc.count >= threshold)
                selected.push_back(bc);
    }
    std::sort(selected.begin(), selected.end(),
              [](const BlockCount &a, const BlockCount &b) {
                  if (a.count != b.count)
                      return a.count > b.count;
                  return a.block < b.block;
              });
    return selected;
}

void
AccessLog::beginEpoch()
{
    std::error_code ec;
    for (auto &p : parts) {
        p.buffer.clear();
        p.raw_bytes = 0;
        p.has_run = false;
        fs::remove(p.raw_path, ec);
        fs::remove(p.run_path, ec);
    }
    logged_count = 0;
}

uint64_t
AccessLog::diskBytes() const
{
    uint64_t total = 0;
    std::error_code ec;
    for (const auto &p : parts) {
        const auto raw = fs::file_size(p.raw_path, ec);
        if (!ec)
            total += raw;
        const auto run = fs::file_size(p.run_path, ec);
        if (!ec)
            total += run;
        ec.clear();
    }
    return total;
}

} // namespace analysis
} // namespace sievestore
