#include "core/auto_tune.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/logging.hpp"
#include "util/sim_time.hpp"

namespace sievestore {
namespace core {

AutoTunedSievePolicy::AutoTunedSievePolicy(SieveStoreCConfig sieve_cfg_,
                                           AutoTuneConfig tune_)
    : sieve_cfg(sieve_cfg_), tune(tune_), t2(sieve_cfg_.t2)
{
    if (tune.min_t2 == 0 || tune.min_t2 > tune.max_t2)
        util::fatal("auto-tune t2 bounds must satisfy 1 <= min <= max");
    if (tune.churn_budget <= 0.0)
        util::fatal("auto-tune churn budget must be positive");
    if (t2 < tune.min_t2)
        t2 = tune.min_t2;
    if (t2 > tune.max_t2)
        t2 = tune.max_t2;
    sieve_cfg.t2 = t2;
    sieve = std::make_unique<SieveStoreCPolicy>(sieve_cfg);
}

// SIEVE_MAY_ALLOC: closing a day appends one entry to the t2
// history — amortized, once per simulated day, off the per-request
// path the batch no-alloc region covers.
void SIEVE_MAY_ALLOC
AutoTunedSievePolicy::rollDay(uint64_t day)
{
    if (day_known && day == current_day)
        return;
    if (day_known) {
        // Close the finished day: compare its allocation volume to the
        // churn budget and nudge t2 by one step with hysteresis.
        const double budget_blocks =
            tune.churn_budget * static_cast<double>(tune.cache_blocks);
        const double allocs = static_cast<double>(allocs_today);
        if (allocs > budget_blocks * (1.0 + tune.slack) &&
            t2 < tune.max_t2) {
            ++t2;
        } else if (allocs < budget_blocks * (1.0 - tune.slack) &&
                   t2 > tune.min_t2) {
            --t2;
        }
        sieve->setT2(t2);
        history.push_back(t2);
    }
    current_day = day;
    day_known = true;
    allocs_today = 0;
}

AllocDecision
AutoTunedSievePolicy::onMiss(const trace::BlockAccess &access)
{
    rollDay(util::dayOf(access.time));
    const AllocDecision decision = sieve->onMiss(access);
    if (decision == AllocDecision::Allocate)
        ++allocs_today;
    return decision;
}

void
AutoTunedSievePolicy::onHit(const trace::BlockAccess &access)
{
    rollDay(util::dayOf(access.time));
    sieve->onHit(access);
}

uint64_t
AutoTunedSievePolicy::metastateBytes() const
{
    return sieve->metastateBytes();
}

// ---- online adaptive sieve ----------------------------------------

AdaptiveSievePolicy::AdaptiveSievePolicy(AdaptiveSieveConfig config)
    : cfg_(config), main_(config.base)
{
    if (cfg_.min_t1 == 0 || cfg_.min_t1 > cfg_.max_t1)
        util::fatal("adaptive sieve t1 bounds must satisfy "
                    "1 <= min <= max");
    if (cfg_.min_t2 == 0 || cfg_.min_t2 > cfg_.max_t2)
        util::fatal("adaptive sieve t2 bounds must satisfy "
                    "1 <= min <= max");
    if (cfg_.ghost_budget == 0)
        util::fatal("adaptive sieve ghost budget must be positive");
    t1_ = clampT1(cfg_.base.t1);
    t2_ = clampT2(cfg_.base.t2);
    main_.setThresholds(t1_, t2_);

    // Five fixed slots: the incumbent plus its four one-step
    // neighbors. Clamping can make a neighbor coincide with the
    // incumbent; the duplicate is harmless because ties favor slot 0.
    SieveStoreCConfig shadow_cfg = cfg_.base;
    shadow_cfg.imct_slots = cfg_.imct_slots;
    for (size_t i = 0; i < 5; ++i)
        candidates_.push_back(std::make_unique<Candidate>(
            shadow_cfg, cfg_.ghost_budget));
    recenter();
}

uint32_t
AdaptiveSievePolicy::clampT1(int64_t t1) const
{
    return static_cast<uint32_t>(std::clamp<int64_t>(
        t1, cfg_.min_t1, cfg_.max_t1));
}

uint32_t
AdaptiveSievePolicy::clampT2(int64_t t2) const
{
    return static_cast<uint32_t>(std::clamp<int64_t>(
        t2, cfg_.min_t2, cfg_.max_t2));
}

void
AdaptiveSievePolicy::recenter()
{
    const int64_t t1 = t1_, t2 = t2_;
    const int64_t s1 = cfg_.t1_step, s2 = cfg_.t2_step;
    const std::pair<uint32_t, uint32_t> settings[5] = {
        {t1_, t2_},
        {clampT1(t1 - s1), t2_},
        {clampT1(t1 + s1), t2_},
        {t1_, clampT2(t2 - s2)},
        {t1_, clampT2(t2 + s2)},
    };
    for (size_t i = 0; i < candidates_.size(); ++i) {
        Candidate &c = *candidates_[i];
        c.t1 = settings[i].first;
        c.t2 = settings[i].second;
        c.shadow.setThresholds(c.t1, c.t2);
        c.captured = 0;
    }
}

void
AdaptiveSievePolicy::observe(const trace::BlockAccess &access)
{
    // Each candidate runs a mini cache simulation: its ghost is the
    // LRU residency set of blocks its shadow sieve would have
    // allocated. A ghost hit is an access that setting would have
    // captured (and refreshes recency); a ghost miss consults the
    // shadow sieve, which admits or rejects exactly like the
    // production algorithm at the candidate's thresholds.
    for (auto &cp : candidates_) {
        Candidate &c = *cp;
        if (c.ghost.contains(access.block)) {
            ++c.captured;
            c.ghost.insert(access.block); // refresh
        } else if (c.shadow.onMiss(access) == AllocDecision::Allocate) {
            c.ghost.insert(access.block);
        }
    }
}

AllocDecision
AdaptiveSievePolicy::onMiss(const trace::BlockAccess &access)
{
    observe(access);
    return main_.onMiss(access);
}

void
AdaptiveSievePolicy::onHit(const trace::BlockAccess &access)
{
    observe(access);
    main_.onHit(access);
}

void
AdaptiveSievePolicy::prefetchMiss(trace::BlockId block) const
{
    main_.prefetchMiss(block);
}

// SIEVE_MAY_ALLOC: the per-day-close history append — once per
// simulated day, off the batch no-alloc path (finishDay runs between
// processBatch calls).
void SIEVE_MAY_ALLOC
AdaptiveSievePolicy::onDayClose(int day)
{
    (void)day;
    // Winner takes the thresholds. Strict > keeps ties (including a
    // fully idle day, all counters zero) with the incumbent.
    size_t best = 0;
    for (size_t i = 1; i < candidates_.size(); ++i)
        if (candidates_[i]->captured > candidates_[best]->captured)
            best = i;
    const Candidate &win = *candidates_[best];
    if (win.t1 != t1_ || win.t2 != t2_) {
        t1_ = win.t1;
        t2_ = win.t2;
        main_.setThresholds(t1_, t2_);
        ++switches_;
    }
    history_.emplace_back(t1_, t2_);
    recenter();
}

std::optional<SieveTuning>
AdaptiveSievePolicy::tuning() const
{
    return SieveTuning{t1_, t2_, switches_};
}

uint64_t
AdaptiveSievePolicy::metastateBytes() const
{
    // The adaptive sieve is honest about its full cost: production
    // tables plus every shadow sieve and shadow ghost.
    uint64_t bytes = main_.metastateBytes();
    for (const auto &c : candidates_)
        bytes += c->shadow.metastateBytes() + c->ghost.memoryBytes();
    return bytes;
}

uint64_t
AdaptiveSievePolicy::candidateCaptured(size_t i) const
{
    SIEVE_CHECK(i < candidates_.size(),
                "candidate index %zu out of %zu", i,
                candidates_.size());
    return candidates_[i]->captured;
}

std::pair<uint32_t, uint32_t>
AdaptiveSievePolicy::candidateSetting(size_t i) const
{
    SIEVE_CHECK(i < candidates_.size(),
                "candidate index %zu out of %zu", i,
                candidates_.size());
    return {candidates_[i]->t1, candidates_[i]->t2};
}

void
AdaptiveSievePolicy::checkInvariants() const
{
    SIEVE_CHECK(t1_ >= cfg_.min_t1 && t1_ <= cfg_.max_t1,
                "adaptive t1=%u escaped [%u, %u]", t1_, cfg_.min_t1,
                cfg_.max_t1);
    SIEVE_CHECK(t2_ >= cfg_.min_t2 && t2_ <= cfg_.max_t2,
                "adaptive t2=%u escaped [%u, %u]", t2_, cfg_.min_t2,
                cfg_.max_t2);
    SIEVE_CHECK(!candidates_.empty() &&
                    candidates_[0]->t1 == t1_ &&
                    candidates_[0]->t2 == t2_,
                "candidate slot 0 must mirror the incumbent setting");
    main_.checkInvariants();
    for (const auto &c : candidates_) {
        SIEVE_CHECK(c->t1 >= cfg_.min_t1 && c->t1 <= cfg_.max_t1 &&
                        c->t2 >= cfg_.min_t2 && c->t2 <= cfg_.max_t2,
                    "shadow setting (%u, %u) escaped the bounds",
                    c->t1, c->t2);
        c->shadow.checkInvariants();
        c->ghost.checkInvariants();
    }
}

} // namespace core
} // namespace sievestore
