#include "core/auto_tune.hpp"

#include "util/check.hpp"
#include "util/logging.hpp"
#include "util/sim_time.hpp"

namespace sievestore {
namespace core {

AutoTunedSievePolicy::AutoTunedSievePolicy(SieveStoreCConfig sieve_cfg_,
                                           AutoTuneConfig tune_)
    : sieve_cfg(sieve_cfg_), tune(tune_), t2(sieve_cfg_.t2)
{
    if (tune.min_t2 == 0 || tune.min_t2 > tune.max_t2)
        util::fatal("auto-tune t2 bounds must satisfy 1 <= min <= max");
    if (tune.churn_budget <= 0.0)
        util::fatal("auto-tune churn budget must be positive");
    if (t2 < tune.min_t2)
        t2 = tune.min_t2;
    if (t2 > tune.max_t2)
        t2 = tune.max_t2;
    sieve_cfg.t2 = t2;
    sieve = std::make_unique<SieveStoreCPolicy>(sieve_cfg);
}

// SIEVE_MAY_ALLOC: closing a day appends one entry to the t2
// history — amortized, once per simulated day, off the per-request
// path the batch no-alloc region covers.
void SIEVE_MAY_ALLOC
AutoTunedSievePolicy::rollDay(uint64_t day)
{
    if (day_known && day == current_day)
        return;
    if (day_known) {
        // Close the finished day: compare its allocation volume to the
        // churn budget and nudge t2 by one step with hysteresis.
        const double budget_blocks =
            tune.churn_budget * static_cast<double>(tune.cache_blocks);
        const double allocs = static_cast<double>(allocs_today);
        if (allocs > budget_blocks * (1.0 + tune.slack) &&
            t2 < tune.max_t2) {
            ++t2;
        } else if (allocs < budget_blocks * (1.0 - tune.slack) &&
                   t2 > tune.min_t2) {
            --t2;
        }
        sieve->setT2(t2);
        history.push_back(t2);
    }
    current_day = day;
    day_known = true;
    allocs_today = 0;
}

AllocDecision
AutoTunedSievePolicy::onMiss(const trace::BlockAccess &access)
{
    rollDay(util::dayOf(access.time));
    const AllocDecision decision = sieve->onMiss(access);
    if (decision == AllocDecision::Allocate)
        ++allocs_today;
    return decision;
}

void
AutoTunedSievePolicy::onHit(const trace::BlockAccess &access)
{
    rollDay(util::dayOf(access.time));
    sieve->onHit(access);
}

uint64_t
AutoTunedSievePolicy::metastateBytes() const
{
    return sieve->metastateBytes();
}

} // namespace core
} // namespace sievestore
