#include "core/imct.hpp"

#include "util/alloc_guard.hpp"
#include "util/check.hpp"
#include "util/footprint.hpp"
#include "util/hashing.hpp"
#include "util/logging.hpp"
#include "util/prefetch.hpp"

namespace sievestore {
namespace core {

Imct::Imct(size_t slots, WindowSpec window, uint64_t seed_)
    : spec(window), seed(seed_)
{
    if (slots == 0)
        util::fatal("IMCT requires at least one slot");
    table.resize(slots);
}

size_t
Imct::slotOf(trace::BlockId block) const
{
    return static_cast<size_t>(
        util::reduceRange(util::seededHash(block, seed), table.size()));
}

void
Imct::prefetch(trace::BlockId block) const
{
    util::prefetchRead(table.data() + slotOf(block));
}

uint32_t
Imct::recordMiss(trace::BlockId block, util::TimeUs t)
{
    // The IMCT is the bounded-metastate tier: a fixed array indexed
    // by a hash. Every miss is O(1) with zero allocation, enforced.
    SIEVE_ASSERT_NO_ALLOC;
    return table[slotOf(block)].record(spec.subwindowOf(t), spec);
}

uint32_t
Imct::count(trace::BlockId block, util::TimeUs t) const
{
    SIEVE_ASSERT_NO_ALLOC;
    return table[slotOf(block)].total(spec.subwindowOf(t), spec);
}

uint64_t
Imct::memoryBytes() const
{
    return util::vectorFootprintBytes(table);
}

void
Imct::clear()
{
    for (auto &c : table)
        c.clear();
}

void
Imct::checkInvariants() const
{
    SIEVE_CHECK(!table.empty(), "IMCT must have at least one slot");
    for (const auto &counter : table)
        counter.checkInvariants(spec);
    // Aliasing bound: probe keys across the address space all land
    // inside the table (reduceRange maps [0, 2^64) onto [0, slots)).
    for (uint64_t probe = 0; probe < 64; ++probe) {
        const trace::BlockId block = probe * 0x0123456789abcdefULL;
        SIEVE_CHECK(slotOf(block) < table.size(),
                    "IMCT slot mapping escaped the table");
    }
    SIEVE_CHECK(memoryBytes() >= table.size() * sizeof(WindowedCounter));
}

} // namespace core
} // namespace sievestore
