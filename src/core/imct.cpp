#include "core/imct.hpp"

#include "util/hashing.hpp"
#include "util/logging.hpp"

namespace sievestore {
namespace core {

Imct::Imct(size_t slots, WindowSpec window, uint64_t seed_)
    : spec(window), seed(seed_)
{
    if (slots == 0)
        util::fatal("IMCT requires at least one slot");
    table.resize(slots);
}

size_t
Imct::slotOf(trace::BlockId block) const
{
    return static_cast<size_t>(
        util::reduceRange(util::seededHash(block, seed), table.size()));
}

uint32_t
Imct::recordMiss(trace::BlockId block, util::TimeUs t)
{
    return table[slotOf(block)].record(spec.subwindowOf(t), spec);
}

uint32_t
Imct::count(trace::BlockId block, util::TimeUs t) const
{
    return table[slotOf(block)].total(spec.subwindowOf(t), spec);
}

void
Imct::clear()
{
    for (auto &c : table)
        c.clear();
}

} // namespace core
} // namespace sievestore
