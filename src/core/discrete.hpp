/**
 * @file
 * Discrete (epoch-batched) sieve selectors (Section 3.2).
 *
 * SieveStore-D performs no online allocation: every access is observed
 * (logged), and at each epoch boundary the selector returns the block
 * set to batch-allocate for the next epoch. The paper's variant selects
 * by access count (ADBA: access-count based discrete batch-allocation,
 * threshold 10/day); the evaluation also uses a randomized selector
 * (RandSieve-BlkD) and the per-day oracle (top 1 % of blocks).
 */

#ifndef SIEVESTORE_CORE_DISCRETE_HPP
#define SIEVESTORE_CORE_DISCRETE_HPP

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "analysis/access_counter.hpp"
#include "analysis/access_log.hpp"
#include "trace/request.hpp"
#include "util/random.hpp"

namespace sievestore {
namespace core {

/** Epoch-batched allocation selector. */
class DiscreteSelector
{
  public:
    virtual ~DiscreteSelector() = default;

    /** Observe one block access during the current epoch. */
    virtual void observe(const trace::BlockAccess &access) = 0;

    /**
     * Observe a batch of accesses from one request. Semantically
     * exactly N observe() calls in order (the default is that loop);
     * selectors with hash-table epoch state override it to run the
     * batched hash-ahead probe path (AdbaSelector's in-memory
     * backend). The appliance's batched request path stages per-block
     * observations and flushes them through here.
     */
    virtual void
    observeBatch(std::span<const trace::BlockAccess> accesses)
    {
        for (const trace::BlockAccess &access : accesses)
            observe(access);
    }

    /**
     * Close the epoch: return the blocks to batch-allocate for the next
     * epoch (descending priority; the cache truncates to capacity) and
     * reset the selector's epoch state.
     */
    virtual std::vector<trace::BlockId> endOfEpoch() = 0;

    virtual const char *name() const = 0;

    /** Approximate in-memory metastate footprint
     * (util/footprint.hpp convention; excludes on-disk logs). */
    virtual uint64_t metastateBytes() const { return 0; }

    /**
     * Pre-size epoch state for an expected per-epoch distinct-block
     * population so steady-state observation never rehashes (the
     * driver passes its hint through; default: no-op).
     */
    virtual void reserveEpochBlocks(size_t) {}

    /** Audit selector invariants; aborts on violation (default: none). */
    virtual void checkInvariants() const {}
};

/**
 * SieveStore-D's ADBA selector: blocks whose epoch access count meets
 * the threshold (paper: 10). Counting backend is either the
 * map-reduce-style on-disk AccessLog — the mechanism the paper
 * describes, with metastate never on the access critical path — or an
 * in-memory counter for fast simulation sweeps.
 */
class AdbaSelector : public DiscreteSelector
{
  public:
    /** In-memory counting backend. */
    explicit AdbaSelector(uint64_t threshold = 10);

    /** Disk-backed counting backend (the paper's log + reduce). */
    AdbaSelector(uint64_t threshold, const std::string &log_directory,
                 analysis::AccessLogConfig log_config = {});

    void observe(const trace::BlockAccess &access) override;
    void observeBatch(std::span<const trace::BlockAccess> accesses) override;
    std::vector<trace::BlockId> endOfEpoch() override;
    const char *name() const override { return "SieveStore-D"; }
    uint64_t metastateBytes() const override;
    void reserveEpochBlocks(size_t blocks) override;
    void checkInvariants() const override;

    uint64_t threshold() const { return threshold_; }

  private:
    uint64_t threshold_;
    std::unique_ptr<analysis::AccessLog> disk_log;
    /** In-memory backend: flat per-block epoch counts. */
    analysis::AccessCounter mem_counts;
};

/** RandSieve-BlkD: a uniformly random 1 % of the epoch's blocks. */
class RandomBlockSelector : public DiscreteSelector
{
  public:
    explicit RandomBlockSelector(double fraction = 0.01,
                                 uint64_t seed = 11);

    void observe(const trace::BlockAccess &access) override;
    std::vector<trace::BlockId> endOfEpoch() override;
    const char *name() const override { return "RandSieve-BlkD"; }
    uint64_t metastateBytes() const override;
    void reserveEpochBlocks(size_t blocks) override;
    void checkInvariants() const override;

  private:
    double fraction;
    util::Rng rng;
    /** Epoch's distinct-block set (counts unused). */
    analysis::AccessCounter seen;
};

/**
 * Causal top-fraction selector: at each epoch boundary, the
 * most-accessed `fraction` of the *finished* epoch's blocks is
 * installed for the next epoch. This is what ADBA would be with a
 * rank-based (rather than threshold-based) criterion; used in
 * sensitivity ablations.
 */
class TopPercentSelector : public DiscreteSelector
{
  public:
    explicit TopPercentSelector(double fraction = 0.01);

    void observe(const trace::BlockAccess &access) override;
    std::vector<trace::BlockId> endOfEpoch() override;
    const char *name() const override { return "TopPercent-D"; }
    uint64_t metastateBytes() const override;
    void reserveEpochBlocks(size_t blocks) override;
    void checkInvariants() const override;

  private:
    double fraction;
    analysis::AccessCounter counts;
};

/**
 * The per-day oracle (Section 5.1's "ideal"): holds each day's top 1 %
 * of blocks *during that day*, which requires future knowledge. The
 * per-day sets come from a profiling pass over the trace
 * (sim::perDayTopBlocks); the first day's set must be preloaded into
 * the appliance (Appliance::preload) before replay.
 */
class OracleDaySelector : public DiscreteSelector
{
  public:
    /**
     * @param day_sets  day_sets[d] = blocks to hold during calendar
     *                  day d
     * @param first_day calendar day of the first endOfEpoch() call
     *                  (i.e. the first day with traffic)
     */
    OracleDaySelector(std::vector<std::vector<trace::BlockId>> day_sets,
                      int first_day);

    void observe(const trace::BlockAccess &access) override;
    std::vector<trace::BlockId> endOfEpoch() override;
    const char *name() const override { return "Ideal"; }

  private:
    std::vector<std::vector<trace::BlockId>> day_sets;
    int next_day;
};

} // namespace core
} // namespace sievestore

#endif // SIEVESTORE_CORE_DISCRETE_HPP
