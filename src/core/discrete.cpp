#include "core/discrete.hpp"

#include <algorithm>

#include "analysis/popularity.hpp"
#include "util/check.hpp"
#include "util/footprint.hpp"
#include "util/logging.hpp"

namespace sievestore {
namespace core {

using trace::BlockId;

AdbaSelector::AdbaSelector(uint64_t threshold)
    : threshold_(threshold)
{
    if (threshold_ == 0)
        util::fatal("ADBA threshold must be >= 1");
}

AdbaSelector::AdbaSelector(uint64_t threshold,
                           const std::string &log_directory,
                           analysis::AccessLogConfig log_config)
    : threshold_(threshold),
      disk_log(std::make_unique<analysis::AccessLog>(log_directory,
                                                     log_config))
{
    if (threshold_ == 0)
        util::fatal("ADBA threshold must be >= 1");
}

// SIEVE_MAY_ALLOC: the selector's disk log and counters grow
// amortized buffers. A configured selector makes
// Appliance::flatEnginesOnly() false, so the batch-level no-alloc
// region never arms over this path.
void SIEVE_MAY_ALLOC
AdbaSelector::observe(const trace::BlockAccess &access)
{
    if (disk_log)
        disk_log->log(access.block);
    else
        mem_counts.observe(access.block);
}

void
AdbaSelector::observeBatch(std::span<const trace::BlockAccess> accesses)
{
    if (disk_log) {
        // The disk backend appends to a sequential log — no table to
        // hash ahead into; the scalar loop is already streaming.
        DiscreteSelector::observeBatch(accesses);
        return;
    }
    // In-memory backend: strip the accesses down to block ids in
    // stack-sized chunks and run the counter's hash-ahead batch path.
    constexpr size_t kChunk = util::FlatIndex<uint64_t>::kBatchChunk;
    BlockId blocks[kChunk];
    for (size_t base = 0; base < accesses.size(); base += kChunk) {
        const size_t n = std::min(kChunk, accesses.size() - base);
        for (size_t i = 0; i < n; ++i)
            blocks[i] = accesses[base + i].block;
        mem_counts.observeBatch(std::span<const BlockId>(blocks, n));
    }
}

std::vector<BlockId>
AdbaSelector::endOfEpoch()
{
    std::vector<BlockId> selected;
    if (disk_log) {
        for (const auto &bc : disk_log->reduce(threshold_))
            selected.push_back(bc.block);
        disk_log->beginEpoch();
    } else {
        const std::vector<analysis::BlockCount> qualifying =
            mem_counts.countsAtLeast(threshold_);
        selected.reserve(qualifying.size());
        for (const auto &bc : qualifying)
            selected.push_back(bc.block);
        mem_counts.clear();
    }
    return selected;
}

uint64_t
AdbaSelector::metastateBytes() const
{
    // The disk-backed variant keeps counts out of memory by design.
    return disk_log ? 0 : mem_counts.memoryBytes();
}

void
AdbaSelector::reserveEpochBlocks(size_t blocks)
{
    if (!disk_log)
        mem_counts.reserve(blocks);
}

void
AdbaSelector::checkInvariants() const
{
    SIEVE_CHECK(threshold_ >= 1, "ADBA threshold must be >= 1");
    mem_counts.checkInvariants();
    // The two counting backends are exclusive: a disk-backed selector
    // must never accumulate in-memory counts.
    if (disk_log)
        SIEVE_CHECK(mem_counts.empty(),
                    "disk-backed ADBA accumulated %zu in-memory counts",
                    mem_counts.uniqueBlocks());
}

RandomBlockSelector::RandomBlockSelector(double fraction_, uint64_t seed)
    : fraction(fraction_), rng(seed)
{
    if (fraction <= 0.0 || fraction > 1.0)
        util::fatal("RandSieve-BlkD fraction must be in (0, 1]");
}

void
RandomBlockSelector::observe(const trace::BlockAccess &access)
{
    seen.observe(access.block);
}

std::vector<BlockId>
RandomBlockSelector::endOfEpoch()
{
    // Deterministic ordering before sampling so results do not depend
    // on hash-table iteration order.
    std::vector<BlockId> all = seen.sortedBlocks();
    seen.clear();
    size_t k = static_cast<size_t>(fraction *
                                   static_cast<double>(all.size()));
    if (k == 0 && !all.empty())
        k = 1;
    // Partial Fisher-Yates: the first k entries become the sample.
    for (size_t i = 0; i < k; ++i) {
        const size_t j = i + static_cast<size_t>(
                                 rng.nextBelow(all.size() - i));
        std::swap(all[i], all[j]);
    }
    all.resize(k);
    return all;
}

uint64_t
RandomBlockSelector::metastateBytes() const
{
    return seen.memoryBytes();
}

void
RandomBlockSelector::reserveEpochBlocks(size_t blocks)
{
    seen.reserve(blocks);
}

void
RandomBlockSelector::checkInvariants() const
{
    SIEVE_CHECK(fraction > 0.0 && fraction <= 1.0,
                "RandSieve-BlkD fraction %f out of (0, 1]", fraction);
    seen.checkInvariants();
}

TopPercentSelector::TopPercentSelector(double fraction_)
    : fraction(fraction_)
{
    if (fraction <= 0.0 || fraction > 1.0)
        util::fatal("TopPercentSelector fraction must be in (0, 1]");
}

void
TopPercentSelector::observe(const trace::BlockAccess &access)
{
    counts.observe(access.block);
}

std::vector<BlockId>
TopPercentSelector::endOfEpoch()
{
    analysis::PopularityProfile profile(counts.sortedByCount(), 1);
    std::vector<BlockId> top = profile.topBlocks(fraction);
    counts.clear();
    return top;
}

uint64_t
TopPercentSelector::metastateBytes() const
{
    return counts.memoryBytes();
}

void
TopPercentSelector::reserveEpochBlocks(size_t blocks)
{
    counts.reserve(blocks);
}

void
TopPercentSelector::checkInvariants() const
{
    SIEVE_CHECK(fraction > 0.0 && fraction <= 1.0,
                "TopPercent fraction %f out of (0, 1]", fraction);
    counts.checkInvariants();
}

OracleDaySelector::OracleDaySelector(
        std::vector<std::vector<BlockId>> day_sets_, int first_day)
    : day_sets(std::move(day_sets_)), next_day(first_day + 1)
{
}

void
OracleDaySelector::observe(const trace::BlockAccess &)
{
    // Nothing to learn: the oracle already knows the future.
}

std::vector<BlockId>
OracleDaySelector::endOfEpoch()
{
    if (next_day < 0 ||
        static_cast<size_t>(next_day) >= day_sets.size()) {
        ++next_day;
        return {};
    }
    return day_sets[static_cast<size_t>(next_day++)];
}

} // namespace core
} // namespace sievestore
