/**
 * @file
 * Perfect Miss Count Table (MCT), the second sieve tier (Section 3.3).
 *
 * A hash table of per-block windowed miss counters, populated only for
 * blocks that already passed the IMCT threshold — the population the
 * IMCT keeps small enough for exact tracking to be affordable.
 * "Periodically we prune the MCT to eliminate stale blocks": prune()
 * drops every entry whose window has fully expired; the appliance calls
 * it on subwindow boundaries.
 */

#ifndef SIEVESTORE_CORE_MCT_HPP
#define SIEVESTORE_CORE_MCT_HPP

#include <cstdint>
#include <span>

#include "core/windowed_counter.hpp"
#include "trace/block.hpp"
#include "util/flat_index.hpp"

namespace sievestore {
namespace core {

/** Exact per-block windowed miss counts for IMCT-qualified blocks. */
class Mct
{
  public:
    explicit Mct(WindowSpec window);

    /** True if the block is currently tracked. */
    bool contains(trace::BlockId block) const;

    /**
     * Batched membership probe: `tracked[i]` = contains(blocks[i]),
     * resolved through the FlatIndex hash-ahead/prefetch kernel. Used
     * by the appliance's batched miss path to overlap the MCT's
     * dependent loads across a chunk of misses.
     */
    void containsBatch(std::span<const trace::BlockId> blocks,
                       std::span<bool> tracked) const;

    /** Start pulling the block's table line toward L1 (pure hint). */
    void prefetch(trace::BlockId block) const { entries.prefetch(block); }

    /**
     * Begin tracking a block (first miss past the IMCT threshold) as
     * of time t. The count starts at zero — the paper requires "an
     * additional minimum number of misses" at the MCT tier — but the
     * entry's window is live from t, so pruning cannot reap it before
     * it has had a full window to accrue them. No-op if already
     * tracked.
     */
    void admit(trace::BlockId block, util::TimeUs t);

    /**
     * Record a miss of a tracked block.
     * @return the block's windowed miss count including this miss
     * @pre contains(block)
     */
    uint32_t recordMiss(trace::BlockId block, util::TimeUs t);

    /** Windowed count for a tracked block (0 if untracked). */
    uint32_t count(trace::BlockId block, util::TimeUs t) const;

    /** Stop tracking a block (after it is allocated). */
    void remove(trace::BlockId block);

    /** Drop all entries whose window has fully expired as of t. */
    void prune(util::TimeUs t);

    size_t size() const { return entries.size(); }

    /** Metastate footprint (util/footprint.hpp convention). */
    uint64_t memoryBytes() const;

    /**
     * Number of entries whose window has fully expired as of t.
     * Audit hook for prune correctness: immediately after prune(t)
     * this must be zero.
     */
    size_t staleEntries(util::TimeUs t) const;

    /**
     * Audit structural invariants: every entry's counter is internally
     * consistent against the shared window spec. Aborts on violation.
     */
    void checkInvariants() const;

    void clear() { entries.clear(); }

    const WindowSpec &window() const { return spec; }

  private:
    /** Flat block index (util/flat_index.hpp): one probe per miss,
     * tombstone-free erase keeps prune() from degrading probes. */
    util::FlatIndex<WindowedCounter> entries;
    WindowSpec spec;
};

} // namespace core
} // namespace sievestore

#endif // SIEVESTORE_CORE_MCT_HPP
