#include "core/sievestore_c.hpp"

#include "util/logging.hpp"

namespace sievestore {
namespace core {

SieveStoreCPolicy::SieveStoreCPolicy(SieveStoreCConfig config)
    : cfg(config), imct_(config.imct_slots, config.window, config.seed),
      mct_(config.window)
{
    if (cfg.imct_only && cfg.mct_only)
        util::fatal("SieveStore-C: imct_only and mct_only are exclusive");
    if (cfg.t1 == 0 && cfg.t2 == 0)
        util::fatal("SieveStore-C: at least one threshold must be > 0");
}

AllocDecision
SieveStoreCPolicy::onMiss(const trace::BlockAccess &access)
{
    const util::TimeUs t = access.time;

    if (cfg.prune_on_subwindow) {
        const uint64_t sub = cfg.window.subwindowOf(t);
        if (sub != last_prune_sub) {
            mct_.prune(t);
            last_prune_sub = sub;
        }
    }

    if (cfg.imct_only) {
        // Ablation: single aliased tier with the combined threshold.
        const uint32_t c = imct_.recordMiss(access.block, t);
        if (c >= cfg.t1 + cfg.t2) {
            ++allocated;
            return AllocDecision::Allocate;
        }
        return AllocDecision::Bypass;
    }

    if (cfg.mct_only) {
        // Ablation: exact counts for every missed block (state
        // explosion the IMCT exists to avoid).
        mct_.admit(access.block, t);
        const uint32_t c = mct_.recordMiss(access.block, t);
        if (c >= cfg.t1 + cfg.t2) {
            mct_.remove(access.block);
            ++allocated;
            return AllocDecision::Allocate;
        }
        return AllocDecision::Bypass;
    }

    // Two-tier sieve. Blocks already in the MCT accrue their
    // "additional" misses there; everyone else must first push their
    // (possibly aliased) IMCT slot past t1.
    if (mct_.contains(access.block)) {
        const uint32_t c2 = mct_.recordMiss(access.block, t);
        if (c2 >= cfg.t2) {
            mct_.remove(access.block);
            ++allocated;
            return AllocDecision::Allocate;
        }
        return AllocDecision::Bypass;
    }

    const uint32_t c1 = imct_.recordMiss(access.block, t);
    if (c1 >= cfg.t1) {
        ++imct_qualified;
        mct_.admit(access.block, t);
        if (cfg.t2 == 0) {
            mct_.remove(access.block);
            ++allocated;
            return AllocDecision::Allocate;
        }
    }
    return AllocDecision::Bypass;
}

const char *
SieveStoreCPolicy::name() const
{
    if (cfg.imct_only)
        return "SieveStore-C/imct-only";
    if (cfg.mct_only)
        return "SieveStore-C/mct-only";
    return "SieveStore-C";
}

uint64_t
SieveStoreCPolicy::metastateBytes() const
{
    return imct_.memoryBytes() + mct_.memoryBytes();
}

} // namespace core
} // namespace sievestore
