#include "core/sievestore_c.hpp"

#include "util/check.hpp"
#include "util/logging.hpp"

namespace sievestore {
namespace core {

SieveStoreCPolicy::SieveStoreCPolicy(SieveStoreCConfig config)
    : cfg(config), imct_(config.imct_slots, config.window, config.seed),
      mct_(config.window)
{
    if (cfg.imct_only && cfg.mct_only)
        util::fatal("SieveStore-C: imct_only and mct_only are exclusive");
    if (cfg.t1 == 0 && cfg.t2 == 0)
        util::fatal("SieveStore-C: at least one threshold must be > 0");
}

AllocDecision
SieveStoreCPolicy::onMiss(const trace::BlockAccess &access)
{
    const util::TimeUs t = access.time;

    if (cfg.prune_on_subwindow) {
        const uint64_t sub = cfg.window.subwindowOf(t);
        if (sub != last_prune_sub) {
            mct_.prune(t);
            last_prune_sub = sub;
        }
    }

    if (cfg.imct_only) {
        // Ablation: single aliased tier with the combined threshold.
        const uint32_t c = imct_.recordMiss(access.block, t);
        if (c >= cfg.t1 + cfg.t2) {
            ++allocated;
            return AllocDecision::Allocate;
        }
        return AllocDecision::Bypass;
    }

    if (cfg.mct_only) {
        // Ablation: exact counts for every missed block (state
        // explosion the IMCT exists to avoid).
        mct_.admit(access.block, t);
        const uint32_t c = mct_.recordMiss(access.block, t);
        if (c >= cfg.t1 + cfg.t2) {
            mct_.remove(access.block);
            ++allocated;
            return AllocDecision::Allocate;
        }
        return AllocDecision::Bypass;
    }

    // Two-tier sieve. Blocks already in the MCT accrue their
    // "additional" misses there; everyone else must first push their
    // (possibly aliased) IMCT slot past t1.
    if (mct_.contains(access.block)) {
        const uint32_t c2 = mct_.recordMiss(access.block, t);
        if (c2 >= cfg.t2) {
            mct_.remove(access.block);
            ++allocated;
            return AllocDecision::Allocate;
        }
        return AllocDecision::Bypass;
    }

    const uint32_t c1 = imct_.recordMiss(access.block, t);
    if (c1 >= cfg.t1) {
        ++imct_qualified;
        mct_.admit(access.block, t);
        if (cfg.t2 == 0) {
            mct_.remove(access.block);
            ++allocated;
            return AllocDecision::Allocate;
        }
    }
    return AllocDecision::Bypass;
}

void
SieveStoreCPolicy::prefetchMiss(trace::BlockId block) const
{
    // Both tiers' lookups for this block are address-computable now;
    // onMiss itself will touch at most these lines plus the MCT probe
    // chain's continuation.
    if (!cfg.imct_only)
        mct_.prefetch(block);
    if (!cfg.mct_only)
        imct_.prefetch(block);
}

const char *
SieveStoreCPolicy::name() const
{
    if (cfg.imct_only)
        return "SieveStore-C/imct-only";
    if (cfg.mct_only)
        return "SieveStore-C/mct-only";
    return "SieveStore-C";
}

uint64_t
SieveStoreCPolicy::metastateBytes() const
{
    return imct_.memoryBytes() + mct_.memoryBytes();
}

void
SieveStoreCPolicy::checkInvariants() const
{
    SIEVE_CHECK(!(cfg.imct_only && cfg.mct_only));
    SIEVE_CHECK(cfg.t1 + cfg.t2 >= 1);
    SIEVE_CHECK(imct_.window().subwindow_us == cfg.window.subwindow_us &&
                    imct_.window().k == cfg.window.k,
                "IMCT window diverged from the configured window");
    SIEVE_CHECK(mct_.window().subwindow_us == cfg.window.subwindow_us &&
                    mct_.window().k == cfg.window.k,
                "MCT window diverged from the configured window");
    imct_.checkInvariants();
    mct_.checkInvariants();
    SIEVE_CHECK(metastateBytes() >= imct_.memoryBytes());
    if (!cfg.imct_only && !cfg.mct_only) {
        // Every MCT entry and every allocation consumed exactly one
        // IMCT qualification; entries leave only via allocation or
        // pruning. So the MCT can never duplicate (or exceed) the
        // promotion state the IMCT tier handed it.
        SIEVE_CHECK(mct_.size() + allocated <= imct_qualified,
                    "MCT holds %zu entries + %llu allocations but only "
                    "%llu IMCT qualifications occurred",
                    mct_.size(),
                    static_cast<unsigned long long>(allocated),
                    static_cast<unsigned long long>(imct_qualified));
    }
    if (cfg.prune_on_subwindow && last_prune_sub > 0) {
        // Prune correctness: nothing stale survived the last prune.
        const util::TimeUs pruned_at =
            last_prune_sub * cfg.window.subwindow_us;
        SIEVE_CHECK(mct_.staleEntries(pruned_at) == 0,
                    "%zu stale MCT entries survived the prune at "
                    "subwindow %llu",
                    mct_.staleEntries(pruned_at),
                    static_cast<unsigned long long>(last_prune_sub));
    }
}

} // namespace core
} // namespace sievestore
