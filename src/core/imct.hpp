/**
 * @file
 * Imprecise Miss Count Table (IMCT), the first sieve tier (Section 3.3).
 *
 * A fixed-size array of windowed counters indexed by a hash of the
 * block address. The block-address space is vastly larger than the
 * table, so the mapping is many-to-one and counts may be aliased —
 * that is the point: the IMCT bounds metastate for the huge population
 * of uncached blocks, at the cost of some low-reuse blocks
 * "piggy-backing on the miss-counts of more popular blocks". The
 * precise MCT behind it (mct.hpp) cleans up what aliasing lets through.
 */

#ifndef SIEVESTORE_CORE_IMCT_HPP
#define SIEVESTORE_CORE_IMCT_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/windowed_counter.hpp"
#include "trace/block.hpp"

namespace sievestore {
namespace core {

/** Fixed-size, hash-indexed, aliased miss-count table. */
class Imct
{
  public:
    /**
     * @param slots  number of counter slots (power of two not required)
     * @param window window configuration shared with the MCT
     * @param seed   hash seed (decorrelates tables in multi-instance
     *               deployments)
     */
    Imct(size_t slots, WindowSpec window, uint64_t seed = 0);

    /**
     * Record a miss of `block` at time t.
     * @return the slot's windowed miss count including this miss
     */
    uint32_t recordMiss(trace::BlockId block, util::TimeUs t);

    /** Windowed count currently associated with `block`'s slot. */
    uint32_t count(trace::BlockId block, util::TimeUs t) const;

    /** Slot index a block maps to (exposed for aliasing tests). */
    size_t slotOf(trace::BlockId block) const;

    /**
     * Start pulling the block's counter slot toward L1 (pure hint).
     * The IMCT is a direct-mapped array, so unlike FlatIndex there is
     * no probe chain — one line covers the whole upcoming access.
     */
    void prefetch(trace::BlockId block) const;

    size_t slots() const { return table.size(); }

    /** Metastate footprint (util/footprint.hpp convention). */
    uint64_t memoryBytes() const;

    /** Zero every slot. */
    void clear();

    /**
     * Audit structural invariants: at least one slot, a sane window
     * spec, every slot's counter internally consistent, and the
     * block -> slot mapping always in range (the IMCT's aliasing
     * bound: no block can escape the table). Aborts on violation.
     */
    void checkInvariants() const;

    const WindowSpec &window() const { return spec; }

  private:
    std::vector<WindowedCounter> table;
    WindowSpec spec;
    uint64_t seed;
};

} // namespace core
} // namespace sievestore

#endif // SIEVESTORE_CORE_IMCT_HPP
