#include "core/mct.hpp"

#include <algorithm>

#include "util/alloc_guard.hpp"
#include "util/check.hpp"
#include "util/footprint.hpp"
#include "util/logging.hpp"

namespace sievestore {
namespace core {

Mct::Mct(WindowSpec window)
    : spec(window)
{
}

bool
Mct::contains(trace::BlockId block) const
{
    SIEVE_ASSERT_NO_ALLOC;
    return entries.contains(block);
}

void
Mct::containsBatch(std::span<const trace::BlockId> blocks,
                   std::span<bool> tracked) const
{
    SIEVE_DCHECK(tracked.size() >= blocks.size());
    SIEVE_ASSERT_NO_ALLOC;
    const WindowedCounter *st[util::FlatIndex<WindowedCounter>::kBatchChunk];
    constexpr size_t kChunk =
        util::FlatIndex<WindowedCounter>::kBatchChunk;
    for (size_t base = 0; base < blocks.size(); base += kChunk) {
        const size_t n = std::min(kChunk, blocks.size() - base);
        entries.findBatch(blocks.subspan(base, n),
                          std::span<const WindowedCounter *>(st, n));
        for (size_t i = 0; i < n; ++i)
            tracked[base + i] = st[i] != nullptr;
    }
}

void
Mct::admit(trace::BlockId block, util::TimeUs t)
{
    if (!entries.hasCapacityFor(1)) {
        // Amortized table growth is admission's one legitimate
        // allocation. It must be exempted explicitly: admit() now runs
        // inside Appliance::processBatch's batch-wide no-alloc region,
        // which would otherwise flag the rehash.
        util::AllocGuardDisarm growth;
        const auto [counter, inserted] = entries.findOrInsert(block);
        if (inserted)
            counter->touch(spec.subwindowOf(t), spec);
        return;
    }
    // With room already reserved the insert must be a pure probe.
    SIEVE_ASSERT_NO_ALLOC;
    const auto [counter, inserted] = entries.findOrInsert(block);
    if (inserted)
        counter->touch(spec.subwindowOf(t), spec);
}

uint32_t
Mct::recordMiss(trace::BlockId block, util::TimeUs t)
{
    // One probe per miss — the MCT's whole cost argument. panic()
    // disarms the guard itself if the precondition fails.
    SIEVE_ASSERT_NO_ALLOC;
    WindowedCounter *counter = entries.find(block);
    if (!counter)
        util::panic("MCT: recordMiss for untracked block");
    return counter->record(spec.subwindowOf(t), spec);
}

uint32_t
Mct::count(trace::BlockId block, util::TimeUs t) const
{
    SIEVE_ASSERT_NO_ALLOC;
    const WindowedCounter *counter = entries.find(block);
    if (!counter)
        return 0;
    return counter->total(spec.subwindowOf(t), spec);
}

void
Mct::remove(trace::BlockId block)
{
    entries.erase(block);
}

uint64_t
Mct::memoryBytes() const
{
    return entries.memoryBytes();
}

size_t
Mct::staleEntries(util::TimeUs t) const
{
    const uint64_t cur_sub = spec.subwindowOf(t);
    size_t stale = 0;
    entries.forEach([&](uint64_t, const WindowedCounter &counter) {
        if (counter.stale(cur_sub, spec))
            ++stale;
    });
    return stale;
}

void
Mct::checkInvariants() const
{
    entries.checkInvariants();
    entries.forEach([&](uint64_t, const WindowedCounter &counter) {
        counter.checkInvariants(spec);
    });
    SIEVE_CHECK(memoryBytes() >=
                entries.size() * (sizeof(trace::BlockId) +
                                  sizeof(WindowedCounter)));
}

void
Mct::prune(util::TimeUs t)
{
    // Tombstone-free backward-shift erase: pruning thousands of stale
    // entries per subwindow frees nothing and allocates nothing.
    SIEVE_ASSERT_NO_ALLOC;
    const uint64_t cur_sub = spec.subwindowOf(t);
    entries.eraseIf([&](uint64_t, const WindowedCounter &counter) {
        return counter.stale(cur_sub, spec);
    });
}

} // namespace core
} // namespace sievestore
