#include "core/mct.hpp"

#include "util/check.hpp"
#include "util/footprint.hpp"
#include "util/logging.hpp"

namespace sievestore {
namespace core {

Mct::Mct(WindowSpec window)
    : spec(window)
{
}

bool
Mct::contains(trace::BlockId block) const
{
    return entries.count(block) != 0;
}

void
Mct::admit(trace::BlockId block, util::TimeUs t)
{
    const auto [it, inserted] = entries.try_emplace(block);
    if (inserted)
        it->second.touch(spec.subwindowOf(t), spec);
}

uint32_t
Mct::recordMiss(trace::BlockId block, util::TimeUs t)
{
    const auto it = entries.find(block);
    if (it == entries.end())
        util::panic("MCT: recordMiss for untracked block");
    return it->second.record(spec.subwindowOf(t), spec);
}

uint32_t
Mct::count(trace::BlockId block, util::TimeUs t) const
{
    const auto it = entries.find(block);
    if (it == entries.end())
        return 0;
    return it->second.total(spec.subwindowOf(t), spec);
}

void
Mct::remove(trace::BlockId block)
{
    entries.erase(block);
}

uint64_t
Mct::memoryBytes() const
{
    return util::unorderedFootprintBytes(entries);
}

size_t
Mct::staleEntries(util::TimeUs t) const
{
    const uint64_t cur_sub = spec.subwindowOf(t);
    size_t stale = 0;
    for (const auto &kv : entries)
        if (kv.second.stale(cur_sub, spec))
            ++stale;
    return stale;
}

void
Mct::checkInvariants() const
{
    for (const auto &kv : entries)
        kv.second.checkInvariants(spec);
    SIEVE_CHECK(memoryBytes() >=
                entries.size() * (sizeof(trace::BlockId) +
                                  sizeof(WindowedCounter)));
}

void
Mct::prune(util::TimeUs t)
{
    const uint64_t cur_sub = spec.subwindowOf(t);
    for (auto it = entries.begin(); it != entries.end();) {
        if (it->second.stale(cur_sub, spec))
            it = entries.erase(it);
        else
            ++it;
    }
}

} // namespace core
} // namespace sievestore
