/**
 * @file
 * Value-type continuous-sieve engine: switch dispatch over the
 * built-in allocation policies.
 *
 * The paper's hot loop consults the sieve once per missed block access
 * (Section 3.2). The virtual AllocationPolicy hierarchy models that
 * cleanly but pays an indirect call per miss; after PR 3 flattened the
 * cache side, the sieve consultation became the last indirect branch
 * on the request path. SievePolicySpec names one of the continuous
 * policies (AOD, WMNA, SieveStore-C, RandSieve-C) as plain data —
 * exactly like cache::EvictionSpec names a replacement policy — and
 * FlatSieve executes it with a switch over the kind, holding the
 * policy state by value.
 *
 * Decision parity is by construction, not by reimplementation: the
 * stateful kinds (SieveStore-C, RandSieve-C) are embedded as value
 * members and consulted through qualified (statically bound) calls
 * into the *same* implementation the virtual engine runs. The virtual
 * hierarchy survives as the reference engine behind
 * -DSIEVE_FLAT_SIEVE=OFF (macro SIEVE_REFERENCE_SIEVE), selected via
 * ApplianceConfig exactly like `replacement`, and the differential
 * suite proves the two engines bit-identical per day and per field.
 */

#ifndef SIEVESTORE_CORE_SIEVE_SPEC_HPP
#define SIEVESTORE_CORE_SIEVE_SPEC_HPP

#include <memory>

#include "core/alloc_policy.hpp"
#include "core/auto_tune.hpp"
#include "core/rand_sieve.hpp"
#include "core/sievestore_c.hpp"
#include "util/flow_annotations.hpp"
#include "util/logging.hpp"

namespace sievestore {
namespace core {

/** Built-in continuous allocation policies (Section 3, Table 2). */
enum class SieveKind : uint8_t {
    /** Allocate-on-demand: every miss allocates. */
    Aod,
    /** Write-miss no-allocate: only read misses allocate. */
    Wmna,
    /** Two-tier hysteresis sieve (IMCT -> MCT, Section 3.3). */
    SieveStoreC,
    /** Allocate a random fraction of misses (Section 5.1). */
    RandSieveC,
    /** SieveStore-C with online (t1, t2) adaptation: shadow ghost
     * caches score neighboring settings each day and the sieve
     * switches to the winner at day close (Section 7's tuning
     * direction, taken online). */
    Adaptive,
};

/**
 * Exhaustiveness anchor for the flat sieve engine: every dispatch
 * switch over SieveKind is written without a default case, so
 * -Wswitch (an error in this tree) flags each switch a new kind has
 * not reached — and this count pins the enum itself.
 */
inline constexpr size_t kSieveKindCount = 5;
static_assert(static_cast<size_t>(SieveKind::Adaptive) + 1 ==
                  kSieveKindCount,
              "SieveKind grew: bump kSieveKindCount and wire the new "
              "kind through every dispatch switch (FlatSieve onMiss / "
              "onHit / prefetchMiss / onDayClose / name / "
              "metastateBytes / checkInvariants, "
              "makeReferenceSievePolicy, sieveKindName)");

/** Policy name as used in reports ("AOD", "SieveStore-C", ...). */
const char *sieveKindName(SieveKind kind);

/**
 * Plain-data selection of a continuous sieve, the allocation-side
 * analogue of cache::EvictionSpec. Fields beyond `kind` configure the
 * stateful kinds and are ignored by the stateless ones.
 */
struct SievePolicySpec
{
    SieveKind kind = SieveKind::Aod;
    /** RandSieve-C allocation probability. */
    double rand_probability = 0.01;
    /** RandSieve-C RNG seed. */
    uint64_t rand_seed = 7;
    /** SieveStore-C tunables (used only when kind == SieveStoreC). */
    SieveStoreCConfig sieve_c;
    /** Adaptive-sieve tunables (used only when kind == Adaptive). */
    AdaptiveSieveConfig adaptive;
};

/**
 * The virtual-engine counterpart of a spec: the seed AllocationPolicy
 * implementation making identical decisions. Used by the
 * SIEVE_FLAT_SIEVE=OFF build and pinned explicitly by the
 * flat-vs-reference differential tests.
 */
std::unique_ptr<AllocationPolicy>
makeReferenceSievePolicy(const SievePolicySpec &spec);

/**
 * Switch-dispatch executor for a SievePolicySpec. All policy state
 * lives inline (by value), so a sieve consultation is a predictable
 * branch plus a direct call — no vtable load, no pointer chase — and
 * the stateless kinds (AOD, WMNA) fold into the caller entirely.
 */
class FlatSieve
{
  public:
    explicit FlatSieve(const SievePolicySpec &spec);

    /** Consulted on every miss; see AllocationPolicy::onMiss.
     * Taint sink: the admit decision must never see measured data. */
    SIEVE_TAINT_SINK AllocDecision
    onMiss(const trace::BlockAccess &access)
    {
        switch (kind_) {
          case SieveKind::Aod:
            return AllocDecision::Allocate;
          case SieveKind::Wmna:
            return access.op == trace::Op::Read ? AllocDecision::Allocate
                                                : AllocDecision::Bypass;
          case SieveKind::SieveStoreC:
            // Qualified call: statically bound into the shared
            // implementation, so the flat engine cannot drift from the
            // reference policy's decisions.
            return sieve_c_.SieveStoreCPolicy::onMiss(access);
          case SieveKind::RandSieveC:
            return rand_.RandSieveCPolicy::onMiss(access);
          case SieveKind::Adaptive:
            return adaptive_.AdaptiveSievePolicy::onMiss(access);
        }
        util::fatal("FlatSieve: unknown sieve kind %d",
                    static_cast<int>(kind_));
    }

    /**
     * Hint that onMiss for this block is imminent (the sieve-prefetch
     * phase of the appliance's batched kernel). Only SieveStore-C has
     * table state worth pulling toward L1; the other kinds decide from
     * registers and ignore the hint. Pure — decisions are unchanged.
     * Taint sink like onMiss: it touches sieve metastate.
     */
    SIEVE_TAINT_SINK void
    prefetchMiss(trace::BlockId block) const
    {
        if (kind_ == SieveKind::SieveStoreC)
            sieve_c_.SieveStoreCPolicy::prefetchMiss(block);
        else if (kind_ == SieveKind::Adaptive)
            adaptive_.AdaptiveSievePolicy::prefetchMiss(block);
    }

    /**
     * Observe a hit. The adaptive sieve feeds hits to its shadow
     * candidates (ghost refreshes and captured-access counts); the
     * other built-in continuous policies keep no hit-side state
     * (SieveStore-C's windows advance on misses only), so for them
     * this is a no-op kept for interface symmetry with
     * AllocationPolicy.
     */
    SIEVE_TAINT_SINK void onHit(const trace::BlockAccess &access)
    {
        if (kind_ == SieveKind::Adaptive)
            adaptive_.AdaptiveSievePolicy::onHit(access);
    }

    /**
     * Calendar-day close (Appliance::finishDay): the adaptive sieve's
     * epoch boundary, where shadow scores are compared and the
     * production thresholds may switch. No-op for the fixed kinds.
     */
    void onDayClose(int day)
    {
        if (kind_ == SieveKind::Adaptive)
            adaptive_.AdaptiveSievePolicy::onDayClose(day);
    }

    /** Self-tuning observability (see AllocationPolicy::tuning). */
    std::optional<SieveTuning>
    tuning() const
    {
        if (kind_ == SieveKind::Adaptive)
            return adaptive_.AdaptiveSievePolicy::tuning();
        return std::nullopt;
    }

    /** Matches the reference policy's name() for every kind. */
    const char *name() const;

    /** Metastate footprint; matches the reference policy per kind. */
    uint64_t metastateBytes() const;

    /**
     * Audit the active kind's invariants (delegates to the embedded
     * SieveStore-C state when that kind is selected; the other kinds
     * are stateless or opaque-RNG and have nothing to audit). Aborts
     * on violation.
     */
    void checkInvariants() const;

    SieveKind kind() const { return kind_; }

    /** Embedded SieveStore-C state (valid when kind()==SieveStoreC). */
    const SieveStoreCPolicy &sieveC() const { return sieve_c_; }

    /** Embedded adaptive state (valid when kind()==Adaptive). */
    const AdaptiveSievePolicy &adaptive() const { return adaptive_; }

  private:
    SieveKind kind_;
    /** SieveStore-C state; 1-slot IMCT when another kind is active. */
    SieveStoreCPolicy sieve_c_;
    RandSieveCPolicy rand_;
    /** Adaptive-sieve state; 1-slot shadows when another kind is
     * active. */
    AdaptiveSievePolicy adaptive_;
};

} // namespace core
} // namespace sievestore

#endif // SIEVESTORE_CORE_SIEVE_SPEC_HPP
