/**
 * @file
 * Self-tuning sieve (the paper's Section 7 "tuning" direction).
 *
 * SieveStore-C's thresholds (t1, t2) were hand-tuned against one
 * ensemble's traces. A deployment-quality appliance should hold its
 * allocation rate to a churn budget on its own: if daily
 * allocation-writes exceed the budget (as a fraction of cache
 * capacity), the sieve is too loose — raise t2; if allocations run far
 * below budget while misses abound, it is too tight — lower t2. The
 * controller adjusts one step per day within configured bounds, which
 * keeps the feedback loop stable against the day-scale workload drift
 * of observation O2.
 */

#ifndef SIEVESTORE_CORE_AUTO_TUNE_HPP
#define SIEVESTORE_CORE_AUTO_TUNE_HPP

#include <memory>
#include <utility>
#include <vector>

#include "cache/ghost_cache.hpp"
#include "core/sievestore_c.hpp"
#include "util/check.hpp"

namespace sievestore {
namespace core {

/** Controller parameters for the self-tuning sieve. */
struct AutoTuneConfig
{
    /** Daily allocation budget as a fraction of cache capacity
     * (1.0 = at most one full cache turnover per day). */
    double churn_budget = 1.0;
    /** Cache capacity in blocks (the budget's denominator). */
    uint64_t cache_blocks = (16ULL << 30) / trace::kBlockBytes;
    /** Hysteresis: only tighten above budget * (1 + slack), only
     * loosen below budget * (1 - slack). */
    double slack = 0.25;
    /** Bounds for the adjusted MCT threshold t2. */
    uint32_t min_t2 = 1;
    uint32_t max_t2 = 16;
};

/**
 * SieveStore-C with a per-day feedback controller on t2.
 *
 * Implemented as an allocation policy wrapping the standard two-tier
 * sieve; day boundaries are detected from access timestamps so no
 * driver support is needed.
 */
class AutoTunedSievePolicy : public AllocationPolicy
{
  public:
    AutoTunedSievePolicy(SieveStoreCConfig sieve, AutoTuneConfig tune);

    AllocDecision onMiss(const trace::BlockAccess &access) override;
    void onHit(const trace::BlockAccess &access) override;
    const char *name() const override { return "SieveStore-C/auto"; }
    uint64_t metastateBytes() const override;

    /** Audit the controller bounds and the wrapped sieve. */
    void
    checkInvariants() const override
    {
        SIEVE_CHECK(t2 >= tune.min_t2 && t2 <= tune.max_t2,
                    "auto-tuned t2=%u escaped [%u, %u]", t2,
                    tune.min_t2, tune.max_t2);
        sieve->checkInvariants();
    }

    /** Current MCT threshold. */
    uint32_t currentT2() const { return t2; }
    /** t2 value in force on each day seen so far. */
    const std::vector<uint32_t> &t2History() const { return history; }
    /** Allocations granted on the current day so far. */
    uint64_t allocationsToday() const { return allocs_today; }

  private:
    void rollDay(uint64_t day);

    SieveStoreCConfig sieve_cfg;
    AutoTuneConfig tune;
    std::unique_ptr<SieveStoreCPolicy> sieve;
    uint32_t t2;
    uint64_t current_day = 0;
    bool day_known = false;
    uint64_t allocs_today = 0;
    std::vector<uint32_t> history;
};

/**
 * Parameters of the online adaptive sieve (AdaptiveSievePolicy).
 * Shadow structures are deliberately small relative to the production
 * sieve: they estimate a *ranking* between neighboring threshold
 * settings, not exact hit counts.
 */
struct AdaptiveSieveConfig
{
    /** Starting setting of the production sieve; also the center of
     * the first shadow neighborhood. */
    SieveStoreCConfig base;
    /** Per-candidate simulated residency budget in blocks (the shadow
     * ghost cache's capacity). */
    uint64_t ghost_budget = 1 << 15;
    /** Shadow sieves' IMCT size (metastate cost per candidate). */
    size_t imct_slots = 1 << 14;
    /** Neighborhood radius: candidate settings are the current
     * (t1, t2) plus (t1 +- t1_step, t2) and (t1, t2 +- t2_step),
     * clamped to the bounds below. */
    uint32_t t1_step = 2;
    uint32_t t2_step = 1;
    uint32_t min_t1 = 1;
    uint32_t max_t1 = 64;
    uint32_t min_t2 = 1;
    uint32_t max_t2 = 16;
};

/**
 * Online adaptive sieve: SieveStore-C whose (t1, t2) thresholds chase
 * the setting that would capture the most accesses.
 *
 * Five candidate settings — the current one plus its four
 * one-step neighbors — each run a small shadow sieve over the full
 * access stream. When a candidate's shadow admits a block, the block
 * enters the candidate's ghost cache (a fixed-budget LRU residency
 * set standing in for the cache it would have filled); every access
 * landing in a candidate's ghost counts as an access that setting
 * would have captured. At each day close (Appliance::finishDay ->
 * onDayClose) the candidate with the most captured accesses wins:
 * the production sieve switches to its thresholds (keeping its
 * accumulated IMCT/MCT state), the neighborhood re-centers, and the
 * per-epoch counters reset. Ties favor the incumbent, so a flat
 * neighborhood never flaps.
 *
 * Decisions still come only from the production sieve; shadows and
 * ghosts observe the same model-side stream and steer nothing within
 * a day, so replay stays deterministic and shard-mergeable.
 */
class AdaptiveSievePolicy : public AllocationPolicy
{
  public:
    explicit AdaptiveSievePolicy(AdaptiveSieveConfig config = {});

    AllocDecision onMiss(const trace::BlockAccess &access) override;
    void onHit(const trace::BlockAccess &access) override;
    /** Forwarded table prefetch (see SieveStoreCPolicy::prefetchMiss);
     * shadows are not prefetched — they are off the latency path. */
    void prefetchMiss(trace::BlockId block) const;
    const char *name() const override { return "SieveStore-C/adaptive"; }
    uint64_t metastateBytes() const override;
    void onDayClose(int day) override;
    std::optional<SieveTuning> tuning() const override;
    void checkInvariants() const override;

    /** Production-sieve thresholds currently in force. */
    uint32_t currentT1() const { return t1_; }
    uint32_t currentT2() const { return t2_; }
    /** Threshold switches performed so far. */
    uint64_t switches() const { return switches_; }
    /** (t1, t2) adopted at each day close so far. */
    const std::vector<std::pair<uint32_t, uint32_t>> &
    history() const
    {
        return history_;
    }
    /** Number of candidate settings (the incumbent is index 0). */
    size_t candidateCount() const { return candidates_.size(); }
    /** Accesses candidate `i`'s ghost captured this epoch. */
    uint64_t candidateCaptured(size_t i) const;
    /** Candidate `i`'s thresholds. */
    std::pair<uint32_t, uint32_t> candidateSetting(size_t i) const;
    /** The wrapped production sieve. */
    const SieveStoreCPolicy &production() const { return main_; }

  private:
    /** One shadow setting under evaluation. */
    struct Candidate
    {
        uint32_t t1;
        uint32_t t2;
        SieveStoreCPolicy shadow;
        // sieve-lint: charged(summed by AdaptiveSievePolicy::metastateBytes)
        cache::GhostCache ghost;
        /** Accesses the ghost captured this epoch. */
        uint64_t captured = 0;

        Candidate(const SieveStoreCConfig &shadow_cfg,
                  uint64_t ghost_budget)
            : t1(shadow_cfg.t1), t2(shadow_cfg.t2), shadow(shadow_cfg),
              ghost(ghost_budget)
        {
        }
    };

    /** Feed one access to every candidate's mini-simulation. */
    void observe(const trace::BlockAccess &access);
    /** Re-derive the neighborhood around (t1_, t2_) and reset the
     * per-epoch counters. Ghost contents survive re-centering: the
     * simulated residency self-corrects within the next epoch. */
    void recenter();
    uint32_t clampT1(int64_t t1) const;
    uint32_t clampT2(int64_t t2) const;

    AdaptiveSieveConfig cfg_;
    /** Production sieve: the only decision maker. */
    SieveStoreCPolicy main_;
    /** Index 0 is always the incumbent setting. */
    std::vector<std::unique_ptr<Candidate>> candidates_;
    uint32_t t1_;
    uint32_t t2_;
    uint64_t switches_ = 0;
    std::vector<std::pair<uint32_t, uint32_t>> history_;
};

} // namespace core
} // namespace sievestore

#endif // SIEVESTORE_CORE_AUTO_TUNE_HPP
