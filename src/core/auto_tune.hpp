/**
 * @file
 * Self-tuning sieve (the paper's Section 7 "tuning" direction).
 *
 * SieveStore-C's thresholds (t1, t2) were hand-tuned against one
 * ensemble's traces. A deployment-quality appliance should hold its
 * allocation rate to a churn budget on its own: if daily
 * allocation-writes exceed the budget (as a fraction of cache
 * capacity), the sieve is too loose — raise t2; if allocations run far
 * below budget while misses abound, it is too tight — lower t2. The
 * controller adjusts one step per day within configured bounds, which
 * keeps the feedback loop stable against the day-scale workload drift
 * of observation O2.
 */

#ifndef SIEVESTORE_CORE_AUTO_TUNE_HPP
#define SIEVESTORE_CORE_AUTO_TUNE_HPP

#include <memory>
#include <vector>

#include "core/sievestore_c.hpp"
#include "util/check.hpp"

namespace sievestore {
namespace core {

/** Controller parameters for the self-tuning sieve. */
struct AutoTuneConfig
{
    /** Daily allocation budget as a fraction of cache capacity
     * (1.0 = at most one full cache turnover per day). */
    double churn_budget = 1.0;
    /** Cache capacity in blocks (the budget's denominator). */
    uint64_t cache_blocks = (16ULL << 30) / trace::kBlockBytes;
    /** Hysteresis: only tighten above budget * (1 + slack), only
     * loosen below budget * (1 - slack). */
    double slack = 0.25;
    /** Bounds for the adjusted MCT threshold t2. */
    uint32_t min_t2 = 1;
    uint32_t max_t2 = 16;
};

/**
 * SieveStore-C with a per-day feedback controller on t2.
 *
 * Implemented as an allocation policy wrapping the standard two-tier
 * sieve; day boundaries are detected from access timestamps so no
 * driver support is needed.
 */
class AutoTunedSievePolicy : public AllocationPolicy
{
  public:
    AutoTunedSievePolicy(SieveStoreCConfig sieve, AutoTuneConfig tune);

    AllocDecision onMiss(const trace::BlockAccess &access) override;
    void onHit(const trace::BlockAccess &access) override;
    const char *name() const override { return "SieveStore-C/auto"; }
    uint64_t metastateBytes() const override;

    /** Audit the controller bounds and the wrapped sieve. */
    void
    checkInvariants() const override
    {
        SIEVE_CHECK(t2 >= tune.min_t2 && t2 <= tune.max_t2,
                    "auto-tuned t2=%u escaped [%u, %u]", t2,
                    tune.min_t2, tune.max_t2);
        sieve->checkInvariants();
    }

    /** Current MCT threshold. */
    uint32_t currentT2() const { return t2; }
    /** t2 value in force on each day seen so far. */
    const std::vector<uint32_t> &t2History() const { return history; }
    /** Allocations granted on the current day so far. */
    uint64_t allocationsToday() const { return allocs_today; }

  private:
    void rollDay(uint64_t day);

    SieveStoreCConfig sieve_cfg;
    AutoTuneConfig tune;
    std::unique_ptr<SieveStoreCPolicy> sieve;
    uint32_t t2;
    uint64_t current_day = 0;
    bool day_known = false;
    uint64_t allocs_today = 0;
    std::vector<uint32_t> history;
};

} // namespace core
} // namespace sievestore

#endif // SIEVESTORE_CORE_AUTO_TUNE_HPP
