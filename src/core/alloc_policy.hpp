/**
 * @file
 * Allocation-policy interface: the sieving abstraction.
 *
 * The paper's central claim is that the *allocation* policy — who gets
 * into the cache — is the lever that matters for ensemble-level SSD
 * caching, independent of the replacement policy. A continuous
 * AllocationPolicy is consulted on every miss; sieved policies
 * (SieveStore-C) answer Allocate only for blocks whose recent miss
 * history proves popularity, unsieved policies (AOD, WMNA) answer from
 * the request type alone.
 */

#ifndef SIEVESTORE_CORE_ALLOC_POLICY_HPP
#define SIEVESTORE_CORE_ALLOC_POLICY_HPP

#include "trace/request.hpp"

namespace sievestore {
namespace core {

/** Outcome of a sieve consultation on a miss. */
enum class AllocDecision : uint8_t {
    /** Serve from the backing ensemble; do not cache. */
    Bypass,
    /** Allocate a frame: incurs one allocation-write per block. */
    Allocate,
};

/**
 * Continuous (per-access) allocation policy. Stateful implementations
 * (SieveStore-C) also observe hits to keep their windows honest.
 */
class AllocationPolicy
{
  public:
    virtual ~AllocationPolicy() = default;

    /**
     * Consulted on every miss.
     * @param access the missed block access
     * @return whether to allocate the block
     */
    virtual AllocDecision onMiss(const trace::BlockAccess &access) = 0;

    /** Observe a hit (default: ignore). */
    virtual void onHit(const trace::BlockAccess &access) { (void)access; }

    /** Policy name for reports. */
    virtual const char *name() const = 0;

    /** Approximate metastate footprint in bytes (for cost reporting). */
    virtual uint64_t metastateBytes() const { return 0; }

    /** Audit policy invariants; aborts on violation (default: none). */
    virtual void checkInvariants() const {}
};

} // namespace core
} // namespace sievestore

#endif // SIEVESTORE_CORE_ALLOC_POLICY_HPP
