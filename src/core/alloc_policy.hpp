/**
 * @file
 * Allocation-policy interface: the sieving abstraction.
 *
 * The paper's central claim is that the *allocation* policy — who gets
 * into the cache — is the lever that matters for ensemble-level SSD
 * caching, independent of the replacement policy. A continuous
 * AllocationPolicy is consulted on every miss; sieved policies
 * (SieveStore-C) answer Allocate only for blocks whose recent miss
 * history proves popularity, unsieved policies (AOD, WMNA) answer from
 * the request type alone.
 */

#ifndef SIEVESTORE_CORE_ALLOC_POLICY_HPP
#define SIEVESTORE_CORE_ALLOC_POLICY_HPP

#include <optional>

#include "trace/request.hpp"

namespace sievestore {
namespace core {

/**
 * Observable state of a self-tuning sieve: the thresholds currently
 * in force and how many times the tuner has switched them. Reported
 * into DailyReport's tune_* columns at day boundaries.
 */
struct SieveTuning
{
    uint32_t t1 = 0;
    uint32_t t2 = 0;
    /** Cumulative threshold switches since construction. */
    uint64_t switches = 0;
};

/** Outcome of a sieve consultation on a miss. */
enum class AllocDecision : uint8_t {
    /** Serve from the backing ensemble; do not cache. */
    Bypass,
    /** Allocate a frame: incurs one allocation-write per block. */
    Allocate,
};

/**
 * Continuous (per-access) allocation policy. Stateful implementations
 * (SieveStore-C) also observe hits to keep their windows honest.
 */
class AllocationPolicy
{
  public:
    virtual ~AllocationPolicy() = default;

    /**
     * Consulted on every miss.
     * @param access the missed block access
     * @return whether to allocate the block
     */
    virtual AllocDecision onMiss(const trace::BlockAccess &access) = 0;

    /** Observe a hit (default: ignore). */
    virtual void onHit(const trace::BlockAccess &access) { (void)access; }

    /**
     * Calendar day `day` just closed (Appliance::finishDay). The hook
     * for epoch-scale adaptation: the adaptive sieve compares its
     * shadow settings here and may switch thresholds for the next
     * day. Off the request path, so implementations may allocate.
     * Default: ignore.
     */
    virtual void onDayClose(int day) { (void)day; }

    /**
     * Self-tuning observability: the thresholds in force and the
     * cumulative switch count, or nullopt for policies that do not
     * tune themselves (the default).
     */
    virtual std::optional<SieveTuning> tuning() const
    {
        return std::nullopt;
    }

    /** Policy name for reports. */
    virtual const char *name() const = 0;

    /** Approximate metastate footprint in bytes (for cost reporting). */
    virtual uint64_t metastateBytes() const { return 0; }

    /** Audit policy invariants; aborts on violation (default: none). */
    virtual void checkInvariants() const {}
};

} // namespace core
} // namespace sievestore

#endif // SIEVESTORE_CORE_ALLOC_POLICY_HPP
