#include "core/appliance.hpp"

#include <algorithm>
#include <cstdlib>
#include <functional>

#include "trace/expand.hpp"
#include "util/alloc_guard.hpp"
#include "util/check.hpp"
#include "util/logging.hpp"
#include "util/sim_time.hpp"

namespace sievestore {
namespace core {

using trace::BlockId;

namespace {

/** Pick the cache engine: custom policy if configured, else flat. */
cache::BlockCache
makeCache(const ApplianceConfig &config)
{
    if (config.replacement)
        return cache::BlockCache(config.cache_blocks,
                                 config.replacement());
    return cache::BlockCache(config.cache_blocks, config.eviction);
}

/** Initial capacity of the in-flight allocation structures. */
constexpr size_t kPendingReserve = 1024;

bool
initialBatchKernel()
{
#ifdef SIEVE_BATCH_KERNEL_DISABLED
    return false;
#else
    // SIEVE_BATCH_KERNEL=0 pins the scalar per-request path from
    // process start; any other value — or none — takes the kernel
    // whenever the flat engines are active.
    const char *env = std::getenv("SIEVE_BATCH_KERNEL");
    return env == nullptr || env[0] != '0';
#endif
}

bool g_batch_kernel = initialBatchKernel();

} // namespace

bool
batchKernelEnabled()
{
    return g_batch_kernel;
}

bool
setBatchKernel(bool enabled)
{
#ifdef SIEVE_BATCH_KERNEL_DISABLED
    (void)enabled;
    return false;
#else
    g_batch_kernel = enabled;
    return g_batch_kernel;
#endif
}

DailyReport
sumReports(const std::vector<DailyReport> &days)
{
    DailyReport sum;
    for (const auto &d : days) {
        sum.accesses += d.accesses;
        sum.read_accesses += d.read_accesses;
        sum.hits += d.hits;
        sum.read_hits += d.read_hits;
        sum.write_hits += d.write_hits;
        sum.allocation_write_blocks += d.allocation_write_blocks;
        sum.batch_moved_blocks += d.batch_moved_blocks;
        sum.ssd_read_ios += d.ssd_read_ios;
        sum.ssd_write_ios += d.ssd_write_ios;
        sum.ssd_alloc_ios += d.ssd_alloc_ios;
    }
    return sum;
}

void
Appliance::initOccupancy()
{
    if (cfg.track_occupancy)
        occupancy_ =
            std::make_unique<ssd::DriveOccupancyTracker>(cfg.ssd);
    alloc_queue.reserve(kPendingReserve);
    pending.reserve(kPendingReserve);
}

Appliance::Appliance(ApplianceConfig config)
    : cfg(std::move(config)), cache_(makeCache(cfg))
{
    if (cfg.allocation) {
        policy_ = cfg.allocation();
        if (!policy_)
            util::fatal("appliance allocation factory returned null");
    } else {
#ifdef SIEVE_REFERENCE_SIEVE
        // Reference build: run the spec through the virtual seed
        // policies so the flat engine has something to differ from.
        policy_ = makeReferenceSievePolicy(cfg.sieve);
#else
        fsieve_.emplace(cfg.sieve);
#endif
    }
    initOccupancy();
}

Appliance::Appliance(ApplianceConfig config,
                     std::unique_ptr<AllocationPolicy> policy)
    : cfg(std::move(config)), policy_(std::move(policy)),
      cache_(makeCache(cfg))
{
    if (!policy_)
        util::fatal("appliance requires an allocation policy");
    initOccupancy();
}

Appliance::Appliance(ApplianceConfig config,
                     std::unique_ptr<DiscreteSelector> selector)
    : cfg(std::move(config)), selector_(std::move(selector)),
      cache_(makeCache(cfg))
{
    if (!selector_)
        util::fatal("appliance requires a discrete selector");
    initOccupancy();
}

// SIEVE_MAY_ALLOC: the per-day report vector grows on the first
// request of each new day. processBatch performs that lookup before
// arming its no-alloc region, and batches never straddle a day, so
// the armed path only ever re-reads an existing slot.
SIEVE_MAY_ALLOC DailyReport &
Appliance::reportFor(util::TimeUs t)
{
    const size_t day = util::dayOf(t);
    if (day >= reports.size())
        reports.resize(day + 1);
    return reports[day];
}

bool
Appliance::flatEnginesOnly() const
{
    return fsieve_.has_value() && !selector_ && !occupancy_ &&
           cache_.customPolicy() == nullptr;
}

void
Appliance::pushAlloc(const PendingAlloc &ev)
{
    if (alloc_queue.size() == alloc_queue.capacity()) {
        // Amortized heap growth is the one legitimate allocation
        // here; exempt it so the batch-level no-alloc region stays
        // armed across it.
        util::AllocGuardDisarm growth;
        alloc_queue.reserve(
            std::max<size_t>(kPendingReserve, alloc_queue.capacity() * 2));
    }
    alloc_queue.push_back(ev);
    std::push_heap(alloc_queue.begin(), alloc_queue.end(),
                   std::greater<PendingAlloc>());
}

void
Appliance::notePending(BlockId block)
{
    if (!pending.hasCapacityFor(1)) {
        util::AllocGuardDisarm growth; // amortized table growth
        pending.reserve(std::max<size_t>(kPendingReserve,
                                         pending.size() * 2));
    }
    pending.findOrInsert(block);
}

void
Appliance::drainAllocations(util::TimeUs up_to)
{
    while (!alloc_queue.empty() &&
           alloc_queue.front().completion <= up_to) {
        const PendingAlloc ev = alloc_queue.front();
        std::pop_heap(alloc_queue.begin(), alloc_queue.end(),
                      std::greater<PendingAlloc>());
        alloc_queue.pop_back();
        pending.erase(ev.block);
        if (cache_.contains(ev.block))
            continue; // raced with a batch install
        cache_.insert(ev.block);
        DailyReport &rep = reportFor(ev.completion);
        ++rep.allocation_write_blocks;
        if (ev.new_io_unit) {
            ++rep.ssd_alloc_ios;
            if (occupancy_)
                occupancy_->recordWrites(ev.completion, 1);
        }
    }
}

void
Appliance::preload(const std::vector<BlockId> &blocks, int serve_day)
{
    const cache::BatchReplaceResult moved = cache_.batchReplace(blocks);
    const size_t day = serve_day < 0 ? 0 : static_cast<size_t>(serve_day);
    if (day >= reports.size())
        reports.resize(day + 1);
    reports[day].batch_moved_blocks += moved.allocated;
}

void
Appliance::processRequestInto(const trace::Request &req, DailyReport &rep)
{
    const bool is_read = req.op == trace::Op::Read;

    // Page-coalescing state: contiguous blocks of the same request that
    // share a 4 KB unit cost one SSD I/O (sub-4 KB charged as full).
    uint64_t last_hit_page = UINT64_MAX;
    uint64_t last_alloc_page = UINT64_MAX;

    trace::BlockAccess access;
    access.time = req.time;
    access.server = req.server;
    access.op = req.op;

    // Discrete selectors observe every access in block order; stage
    // them into request-local chunks and flush through observeBatch so
    // hash-table-backed selectors get the batched hash-ahead path.
    constexpr size_t kStage = cache::BlockCache::kProbeBatch;
    trace::BlockAccess staged[kStage];
    size_t n_staged = 0;
    const auto stageObservation = [&](const trace::BlockAccess &a) {
        staged[n_staged++] = a;
        if (n_staged == kStage) {
            selector_->observeBatch(
                std::span<const trace::BlockAccess>(staged, n_staged));
            n_staged = 0;
        }
    };

    for (uint32_t i = 0; i < req.length_blocks; ++i) {
        const BlockId block = req.blockAt(i);
        const uint64_t page = trace::blockNrOf(block) /
                              trace::kBlocksPerPage;
        access.block = block;
        access.completion = trace::interpolatedCompletion(req, i);

        ++rep.accesses;
        if (is_read)
            ++rep.read_accesses;

        if (cache_.access(block)) {
            ++rep.hits;
            if (is_read)
                ++rep.read_hits;
            else
                ++rep.write_hits;
            if (page != last_hit_page) {
                last_hit_page = page;
                if (is_read) {
                    ++rep.ssd_read_ios;
                    if (occupancy_)
                        occupancy_->recordReads(req.time, 1);
                } else {
                    ++rep.ssd_write_ios;
                    if (occupancy_)
                        occupancy_->recordWrites(req.time, 1);
                }
            }
            if (fsieve_)
                fsieve_->onHit(access);
            else if (policy_)
                policy_->onHit(access);
            if (selector_)
                stageObservation(access);
            continue;
        }

        // Miss. Discrete selectors observe the access (SieveStore-D
        // logs *accesses*, not misses); continuous policies sieve it.
        if (selector_) {
            stageObservation(access);
            continue;
        }
        if (pending.contains(block))
            continue; // allocation already in flight
        const AllocDecision decision =
            fsieve_ ? fsieve_->onMiss(access) : policy_->onMiss(access);
        if (decision == AllocDecision::Allocate) {
            notePending(block);
            const bool new_unit = page != last_alloc_page;
            last_alloc_page = page;
            pushAlloc(PendingAlloc{access.completion, block, new_unit});
        }
    }
    if (n_staged != 0)
        selector_->observeBatch(
            std::span<const trace::BlockAccess>(staged, n_staged));
}

void
Appliance::processRequestProbed(const trace::Request &req,
                                DailyReport &rep)
{
    SIEVE_DCHECK(flatEnginesOnly());
    const bool is_read = req.op == trace::Op::Read;

    // Page-coalescing state, exactly as in the scalar loop.
    uint64_t last_hit_page = UINT64_MAX;
    uint64_t last_alloc_page = UINT64_MAX;

    trace::BlockAccess access;
    access.time = req.time;
    access.server = req.server;
    access.op = req.op;

    constexpr size_t kChunk = cache::BlockCache::kProbeBatch;
    BlockId keys[kChunk];
    cache::PolicyState *st[kChunk];

    for (uint32_t base = 0; base < req.length_blocks;
         base += static_cast<uint32_t>(kChunk)) {
        const auto n = static_cast<uint32_t>(
            std::min<size_t>(kChunk, req.length_blocks - base));

        // Phase 1 — probe-gather: one findBatch resolves the whole
        // chunk's residency through the hash-ahead/prefetch kernel.
        // Nothing mutates the cache index within a request (pending
        // allocations drain between requests), so the gathered
        // pointers and the hit/miss partition stay exact.
        for (uint32_t i = 0; i < n; ++i)
            keys[i] = req.blockAt(base + i);
        cache_.probeBatch(std::span<const BlockId>(keys, n),
                          std::span<cache::PolicyState *>(st, n));

        // Phase 2 — sieve prefetch: every gathered miss is about to
        // consult the pending set and the sieve tiers; start their
        // lines (pending home slot, IMCT slot, MCT home slot) toward
        // L1 before the in-order pass issues its dependent loads.
        for (uint32_t i = 0; i < n; ++i) {
            if (st[i] == nullptr) {
                pending.prefetch(keys[i]);
                fsieve_->prefetchMiss(keys[i]);
            }
        }

        // Phase 3 — decide + mutate, in batch order: bookkeeping
        // identical to processRequestInto, with the residency probe
        // already resolved. Policy transitions touch payloads and the
        // order book, never the index structure, so duplicates simply
        // retouch the same gathered slot.
        for (uint32_t i = 0; i < n; ++i) {
            const BlockId block = keys[i];
            const uint64_t page = trace::blockNrOf(block) /
                                  trace::kBlocksPerPage;
            access.block = block;
            access.completion =
                trace::interpolatedCompletion(req, base + i);

            ++rep.accesses;
            if (is_read)
                ++rep.read_accesses;

            if (st[i] != nullptr) {
                cache_.touchProbed(*st[i]);
                ++rep.hits;
                if (is_read)
                    ++rep.read_hits;
                else
                    ++rep.write_hits;
                if (page != last_hit_page) {
                    last_hit_page = page;
                    if (is_read)
                        ++rep.ssd_read_ios;
                    else
                        ++rep.ssd_write_ios;
                }
                fsieve_->onHit(access);
                continue;
            }

            if (pending.contains(block))
                continue; // allocation already in flight
            if (fsieve_->onMiss(access) == AllocDecision::Allocate) {
                notePending(block);
                const bool new_unit = page != last_alloc_page;
                last_alloc_page = page;
                pushAlloc(
                    PendingAlloc{access.completion, block, new_unit});
            }
        }
    }
}

void
Appliance::processRequest(const trace::Request &req)
{
    // Size the report vector before draining so the reference stays
    // valid: every drained completion is <= req.time, so the drain's
    // own reportFor never resizes past this one.
    DailyReport &rep = reportFor(req.time);
    drainAllocations(req.time);
    processRequestInto(req, rep);
}

void
Appliance::processBatch(std::span<const trace::Request> batch)
{
    if (batch.empty())
        return;
    // One day-report lookup per batch: the sim:: facade slices batches
    // at calendar-day boundaries, so every request lands in one day.
    DailyReport &rep = reportFor(batch.front().time);
    SIEVE_DCHECK(util::dayOf(batch.front().time) ==
                     util::dayOf(batch.back().time),
                 "processBatch: batch straddles a calendar-day boundary");
    // The flat hot path is claimed allocation-free per batch; the only
    // exemptions are the explicit amortized-growth points (sieve
    // tables, the pending set, the allocation heap).
    SIEVE_ASSERT_NO_ALLOC_WHEN(flatEnginesOnly());
    if (flatEnginesOnly() && batchKernelEnabled()) {
        // Batched lookup kernel: same per-request drain cadence as the
        // scalar loop (bit-identity depends on it — a drain can insert
        // into the cache, which would invalidate gathered pointers and
        // flip later probes), with each request's blocks resolved
        // through the probe-gather -> sieve-prefetch -> decide phases.
        for (const trace::Request &req : batch) {
            drainAllocations(req.time);
            processRequestProbed(req, rep);
        }
        return;
    }
    for (const trace::Request &req : batch) {
        drainAllocations(req.time);
        processRequestInto(req, rep);
    }
}

void
Appliance::finishDay(int day)
{
    SIEVE_CHECK(day > last_finished_day,
                "finishDay(%d) after finishDay(%d): days must strictly "
                "increase",
                day, last_finished_day);
    last_finished_day = day;

    const util::TimeUs day_end =
        (static_cast<util::TimeUs>(day) + 1) * util::kUsPerDay;
    drainAllocations(day_end - 1);

    if (!selector_)
        return;

    // Epoch boundary: select, batch-install with cancellation, and
    // attribute the moves to the day they serve.
    const std::vector<BlockId> next_set = selector_->endOfEpoch();
    const cache::BatchReplaceResult moved = cache_.batchReplace(next_set);

    const size_t serve_day = static_cast<size_t>(day) + 1;
    if (serve_day >= reports.size())
        reports.resize(serve_day + 1);
    reports[serve_day].batch_moved_blocks += moved.allocated;

    if (cfg.charge_batch_to_occupancy && occupancy_) {
        // Ablation: charge the batch as 4 KB writes spread uniformly
        // over the first 6 hours of the serving day.
        const uint64_t ios =
            (moved.allocated + trace::kBlocksPerPage - 1) /
            trace::kBlocksPerPage;
        const util::TimeUs start = serve_day * util::kUsPerDay;
        const util::TimeUs span = 6 * util::kUsPerHour;
        for (uint64_t k = 0; k < ios; ++k) {
            const util::TimeUs t =
                start + (span * k) / (ios ? ios : 1);
            occupancy_->recordWrites(t, 1);
        }
    }
}

void
Appliance::finishTrace()
{
    drainAllocations(UINT64_MAX);
}

const ssd::DriveOccupancyTracker *
Appliance::occupancy() const
{
    return occupancy_.get();
}

const char *
Appliance::policyName() const
{
    if (fsieve_)
        return fsieve_->name();
    return policy_ ? policy_->name() : selector_->name();
}

uint64_t
Appliance::metastateBytes() const
{
    if (fsieve_)
        return fsieve_->metastateBytes();
    return policy_ ? policy_->metastateBytes()
                   : selector_->metastateBytes();
}

void
Appliance::checkInvariants() const
{
    // Exactly one allocation mechanism.
    const int engines = (fsieve_.has_value() ? 1 : 0) +
                        (policy_ ? 1 : 0) + (selector_ ? 1 : 0);
    SIEVE_CHECK(engines == 1,
                "appliance must have exactly one of sieve spec / "
                "policy / selector, has %d", engines);
    cache_.checkInvariants();

    // Every in-flight allocation is tracked in both structures, and
    // the pending guard keeps the queue duplicate-free.
    SIEVE_CHECK(pending.size() == alloc_queue.size(),
                "%zu pending blocks vs %zu queued allocations",
                pending.size(), alloc_queue.size());
    SIEVE_CHECK(std::is_heap(alloc_queue.begin(), alloc_queue.end(),
                             std::greater<PendingAlloc>()),
                "allocation queue lost its heap ordering");
    pending.checkInvariants();

    for (const DailyReport &rep : reports) {
        SIEVE_CHECK(rep.hits <= rep.accesses,
                    "daily hits %llu exceed accesses %llu",
                    static_cast<unsigned long long>(rep.hits),
                    static_cast<unsigned long long>(rep.accesses));
        SIEVE_CHECK(rep.read_accesses <= rep.accesses);
        SIEVE_CHECK(rep.read_hits + rep.write_hits == rep.hits,
                    "read hits + write hits must equal total hits");
        SIEVE_CHECK(rep.read_hits <= rep.read_accesses);
        SIEVE_CHECK(rep.ssd_read_ios <= rep.read_hits);
        SIEVE_CHECK(rep.ssd_write_ios <= rep.write_hits);
        SIEVE_CHECK(rep.ssd_alloc_ios <= rep.allocation_write_blocks);
    }

    if (fsieve_)
        fsieve_->checkInvariants();
    if (policy_)
        policy_->checkInvariants();
    if (selector_)
        selector_->checkInvariants();
}

} // namespace core
} // namespace sievestore
