#include "core/appliance.hpp"

#include <algorithm>
#include <cstdlib>
#include <functional>

#include "trace/expand.hpp"
#include "util/alloc_guard.hpp"
#include "util/check.hpp"
#include "util/logging.hpp"
#include "util/sim_time.hpp"

namespace sievestore {
namespace core {

using trace::BlockId;

namespace {

/** Pick the cache engine: custom policy if configured, else flat. */
cache::BlockCache
makeCache(const ApplianceConfig &config)
{
    if (config.replacement)
        return cache::BlockCache(config.cache_blocks,
                                 config.replacement());
    return cache::BlockCache(config.cache_blocks, config.eviction);
}

/** Initial capacity of the in-flight allocation structures. */
constexpr size_t kPendingReserve = 1024;

bool
initialBatchKernel()
{
#ifdef SIEVE_BATCH_KERNEL_DISABLED
    return false;
#else
    // SIEVE_BATCH_KERNEL=0 pins the scalar per-request path from
    // process start; any other value — or none — takes the kernel
    // whenever the flat engines are active.
    const char *env = std::getenv("SIEVE_BATCH_KERNEL");
    return env == nullptr || env[0] != '0';
#endif
}

bool g_batch_kernel = initialBatchKernel();

} // namespace

bool
batchKernelEnabled()
{
    return g_batch_kernel;
}

bool
setBatchKernel(bool enabled)
{
#ifdef SIEVE_BATCH_KERNEL_DISABLED
    (void)enabled;
    return false;
#else
    g_batch_kernel = enabled;
    return g_batch_kernel;
#endif
}

void
DailyReport::add(const DailyReport &other)
{
    accesses += other.accesses;
    read_accesses += other.read_accesses;
    hits += other.hits;
    read_hits += other.read_hits;
    write_hits += other.write_hits;
    allocation_write_blocks += other.allocation_write_blocks;
    batch_moved_blocks += other.batch_moved_blocks;
    ssd_read_ios += other.ssd_read_ios;
    ssd_write_ios += other.ssd_write_ios;
    ssd_alloc_ios += other.ssd_alloc_ios;
    tune_t1 = std::max(tune_t1, other.tune_t1);
    tune_t2 = std::max(tune_t2, other.tune_t2);
    tune_switches += other.tune_switches;
    storage_read_ios += other.storage_read_ios;
    storage_write_ios += other.storage_write_ios;
    storage_read_errors += other.storage_read_errors;
    storage_write_errors += other.storage_write_errors;
    storage_read_ns += other.storage_read_ns;
    storage_write_ns += other.storage_write_ns;
}

DailyReport
sumReports(const std::vector<DailyReport> &days)
{
    DailyReport sum;
    for (const auto &d : days)
        sum.add(d);
    return sum;
}

void
Appliance::initOccupancy()
{
    if (cfg.track_occupancy)
        occupancy_ =
            std::make_unique<ssd::DriveOccupancyTracker>(cfg.ssd);
    alloc_queue.reserve(kPendingReserve);
    pending.reserve(kPendingReserve);
    backend_ = storage::makeBackend(cfg.backend, cfg.ssd,
                                    cfg.cache_blocks);
}

Appliance::Appliance(ApplianceConfig config)
    : cfg(std::move(config)), cache_(makeCache(cfg))
{
    if (cfg.allocation) {
        policy_ = cfg.allocation();
        if (!policy_)
            util::fatal("appliance allocation factory returned null");
    } else {
#ifdef SIEVE_REFERENCE_SIEVE
        // Reference build: run the spec through the virtual seed
        // policies so the flat engine has something to differ from.
        policy_ = makeReferenceSievePolicy(cfg.sieve);
#else
        fsieve_.emplace(cfg.sieve);
#endif
    }
    initOccupancy();
}

Appliance::Appliance(ApplianceConfig config,
                     std::unique_ptr<AllocationPolicy> policy)
    : cfg(std::move(config)), policy_(std::move(policy)),
      cache_(makeCache(cfg))
{
    if (!policy_)
        util::fatal("appliance requires an allocation policy");
    initOccupancy();
}

Appliance::Appliance(ApplianceConfig config,
                     std::unique_ptr<DiscreteSelector> selector)
    : cfg(std::move(config)), selector_(std::move(selector)),
      cache_(makeCache(cfg))
{
    if (!selector_)
        util::fatal("appliance requires a discrete selector");
    initOccupancy();
}

// SIEVE_MAY_ALLOC: the per-day report vector grows on the first
// request of each new day. processBatch performs that lookup before
// arming its no-alloc region, and batches never straddle a day, so
// the armed path only ever re-reads an existing slot.
SIEVE_MAY_ALLOC DailyReport &
Appliance::reportFor(util::TimeUs t)
{
    const size_t day = util::dayOf(t);
    if (day >= reports.size())
        reports.resize(day + 1);
    return reports[day];
}

bool
Appliance::flatEnginesOnly() const
{
    return fsieve_.has_value() && !selector_ && !occupancy_ &&
           cache_.customPolicy() == nullptr;
}

void
Appliance::pushAlloc(const PendingAlloc &ev)
{
    if (alloc_queue.size() == alloc_queue.capacity()) {
        // Amortized heap growth is the one legitimate allocation
        // here; exempt it so the batch-level no-alloc region stays
        // armed across it.
        util::AllocGuardDisarm growth;
        alloc_queue.reserve(
            std::max<size_t>(kPendingReserve, alloc_queue.capacity() * 2));
    }
    alloc_queue.push_back(ev);
    std::push_heap(alloc_queue.begin(), alloc_queue.end(),
                   std::greater<PendingAlloc>());
}

void
Appliance::notePending(BlockId block)
{
    if (!pending.hasCapacityFor(1)) {
        util::AllocGuardDisarm growth; // amortized table growth
        pending.reserve(std::max<size_t>(kPendingReserve,
                                         pending.size() * 2));
    }
    pending.findOrInsert(block);
}

void
Appliance::drainAllocations(util::TimeUs up_to)
{
    while (!alloc_queue.empty() &&
           alloc_queue.front().completion <= up_to) {
        const PendingAlloc ev = alloc_queue.front();
        std::pop_heap(alloc_queue.begin(), alloc_queue.end(),
                      std::greater<PendingAlloc>());
        alloc_queue.pop_back();
        pending.erase(ev.block);
        if (cache_.contains(ev.block))
            continue; // raced with a batch install
        const std::optional<BlockId> victim = cache_.insert(ev.block);
        if (victim)
            stageTrim(ev.completion, *victim);
        DailyReport &rep = reportFor(ev.completion);
        ++rep.allocation_write_blocks;
        if (ev.new_io_unit) {
            ++rep.ssd_alloc_ios;
            stageWrite(ev.completion, ev.block);
            if (occupancy_)
                occupancy_->recordWrites(ev.completion, 1);
        }
    }
}

void
Appliance::stageRead(util::TimeUs t, BlockId block)
{
    if (!backend_)
        return;
    stage_reads_[n_stage_reads_++] =
        storage::StorageOp{t, trace::pageStart(block)};
    if (n_stage_reads_ == kStorageStage)
        flushStorageReads();
}

void
Appliance::stageWrite(util::TimeUs t, BlockId block)
{
    if (!backend_)
        return;
    stage_writes_[n_stage_writes_++] =
        storage::StorageOp{t, trace::pageStart(block)};
    if (n_stage_writes_ == kStorageStage)
        flushStorageWrites();
}

void
Appliance::stageTrim(util::TimeUs t, BlockId block)
{
    if (!backend_)
        return;
    stage_trims_[n_stage_trims_++] =
        storage::StorageOp{t, trace::pageStart(block)};
    if (n_stage_trims_ == kStorageStage)
        flushStorageTrims();
}

// The flush helpers run inside armed no-alloc regions when a stage
// array fills mid-batch. They stay allocation-free at runtime: every
// staged op's time belongs to a day whose report slot already exists
// (the hit path stages at req.time after processBatch's reportFor;
// the drain stages at completions <= the current request time; batch
// moves resize the serve day's slot first), so the attribution
// lookups below only re-read existing slots.
void
Appliance::flushStorageReads()
{
    if (n_stage_reads_ == 0)
        return;
    backend_->readBlocks(
        std::span<const storage::StorageOp>(stage_reads_,
                                            n_stage_reads_),
        std::span<uint32_t>(stage_lat_, n_stage_reads_));
    for (size_t i = 0; i < n_stage_reads_; ++i) {
        DailyReport &rep = reportFor(stage_reads_[i].time);
        if (stage_lat_[i] == storage::kFailedOp) {
            ++rep.storage_read_errors;
        } else {
            ++rep.storage_read_ios;
            rep.storage_read_ns += stage_lat_[i];
        }
    }
    n_stage_reads_ = 0;
}

void
Appliance::flushStorageWrites()
{
    if (n_stage_writes_ == 0)
        return;
    backend_->writeBlocks(
        std::span<const storage::StorageOp>(stage_writes_,
                                            n_stage_writes_),
        std::span<uint32_t>(stage_lat_, n_stage_writes_));
    for (size_t i = 0; i < n_stage_writes_; ++i) {
        DailyReport &rep = reportFor(stage_writes_[i].time);
        if (stage_lat_[i] == storage::kFailedOp) {
            ++rep.storage_write_errors;
        } else {
            ++rep.storage_write_ios;
            rep.storage_write_ns += stage_lat_[i];
        }
    }
    n_stage_writes_ = 0;
}

void
Appliance::flushStorageTrims()
{
    if (n_stage_trims_ == 0)
        return;
    backend_->trimBlocks(std::span<const storage::StorageOp>(
        stage_trims_, n_stage_trims_));
    n_stage_trims_ = 0;
}

void
Appliance::flushStorage()
{
    if (!backend_)
        return;
    flushStorageReads();
    flushStorageWrites();
    flushStorageTrims();
}

void
Appliance::stageBatchMove(util::TimeUs t)
{
    // Page-coalesce consecutive same-unit blocks exactly like the
    // request path: the selector emits runs of contiguous blocks, so
    // adjacent-duplicate suppression matches the model's 4 KB unit
    // charging for batch installs.
    uint64_t last_page = UINT64_MAX;
    for (BlockId b : batch_alloc_scratch_) {
        const uint64_t page =
            trace::blockNrOf(b) / trace::kBlocksPerPage;
        if (page == last_page)
            continue;
        last_page = page;
        stageWrite(t, b);
    }
    last_page = UINT64_MAX;
    for (BlockId b : batch_evict_scratch_) {
        const uint64_t page =
            trace::blockNrOf(b) / trace::kBlocksPerPage;
        if (page == last_page)
            continue;
        last_page = page;
        stageTrim(t, b);
    }
}

void
Appliance::preload(const std::vector<BlockId> &blocks, int serve_day)
{
    const cache::BatchReplaceResult moved =
        backend_ ? cache_.batchReplace(blocks, &batch_alloc_scratch_,
                                       &batch_evict_scratch_)
                 : cache_.batchReplace(blocks);
    const size_t day = serve_day < 0 ? 0 : static_cast<size_t>(serve_day);
    if (day >= reports.size())
        reports.resize(day + 1);
    reports[day].batch_moved_blocks += moved.allocated;
    if (backend_) {
        stageBatchMove(static_cast<util::TimeUs>(day) *
                       util::kUsPerDay);
        flushStorage();
    }
}

void
Appliance::processRequestInto(const trace::Request &req, DailyReport &rep)
{
    const bool is_read = req.op == trace::Op::Read;

    // Page-coalescing state: contiguous blocks of the same request that
    // share a 4 KB unit cost one SSD I/O (sub-4 KB charged as full).
    uint64_t last_hit_page = UINT64_MAX;
    uint64_t last_alloc_page = UINT64_MAX;

    trace::BlockAccess access;
    access.time = req.time;
    access.server = req.server;
    access.op = req.op;

    // Discrete selectors observe every access in block order; stage
    // them into request-local chunks and flush through observeBatch so
    // hash-table-backed selectors get the batched hash-ahead path.
    constexpr size_t kStage = cache::BlockCache::kProbeBatch;
    trace::BlockAccess staged[kStage];
    size_t n_staged = 0;
    const auto stageObservation = [&](const trace::BlockAccess &a) {
        staged[n_staged++] = a;
        if (n_staged == kStage) {
            selector_->observeBatch(
                std::span<const trace::BlockAccess>(staged, n_staged));
            n_staged = 0;
        }
    };

    for (uint32_t i = 0; i < req.length_blocks; ++i) {
        const BlockId block = req.blockAt(i);
        const uint64_t page = trace::blockNrOf(block) /
                              trace::kBlocksPerPage;
        access.block = block;
        access.completion = trace::interpolatedCompletion(req, i);

        ++rep.accesses;
        if (is_read)
            ++rep.read_accesses;

        if (cache_.access(block)) {
            ++rep.hits;
            if (is_read)
                ++rep.read_hits;
            else
                ++rep.write_hits;
            if (page != last_hit_page) {
                last_hit_page = page;
                if (is_read) {
                    ++rep.ssd_read_ios;
                    stageRead(req.time, block);
                    if (occupancy_)
                        occupancy_->recordReads(req.time, 1);
                } else {
                    ++rep.ssd_write_ios;
                    stageWrite(req.time, block);
                    if (occupancy_)
                        occupancy_->recordWrites(req.time, 1);
                }
            }
            if (fsieve_)
                fsieve_->onHit(access);
            else if (policy_)
                policy_->onHit(access);
            if (selector_)
                stageObservation(access);
            continue;
        }

        // Miss. Discrete selectors observe the access (SieveStore-D
        // logs *accesses*, not misses); continuous policies sieve it.
        if (selector_) {
            stageObservation(access);
            continue;
        }
        if (pending.contains(block))
            continue; // allocation already in flight
        const AllocDecision decision =
            fsieve_ ? fsieve_->onMiss(access) : policy_->onMiss(access);
        if (decision == AllocDecision::Allocate) {
            notePending(block);
            const bool new_unit = page != last_alloc_page;
            last_alloc_page = page;
            pushAlloc(PendingAlloc{access.completion, block, new_unit});
        }
    }
    if (n_staged != 0)
        selector_->observeBatch(
            std::span<const trace::BlockAccess>(staged, n_staged));
}

void
Appliance::processRequestProbed(const trace::Request &req,
                                DailyReport &rep)
{
    SIEVE_DCHECK(flatEnginesOnly());
    const bool is_read = req.op == trace::Op::Read;

    // Page-coalescing state, exactly as in the scalar loop.
    uint64_t last_hit_page = UINT64_MAX;
    uint64_t last_alloc_page = UINT64_MAX;

    trace::BlockAccess access;
    access.time = req.time;
    access.server = req.server;
    access.op = req.op;

    constexpr size_t kChunk = cache::BlockCache::kProbeBatch;
    BlockId keys[kChunk];
    cache::PolicyState *st[kChunk];

    for (uint32_t base = 0; base < req.length_blocks;
         base += static_cast<uint32_t>(kChunk)) {
        const auto n = static_cast<uint32_t>(
            std::min<size_t>(kChunk, req.length_blocks - base));

        // Phase 1 — probe-gather: one findBatch resolves the whole
        // chunk's residency through the hash-ahead/prefetch kernel.
        // Nothing mutates the cache index within a request (pending
        // allocations drain between requests), so the gathered
        // pointers and the hit/miss partition stay exact.
        for (uint32_t i = 0; i < n; ++i)
            keys[i] = req.blockAt(base + i);
        cache_.probeBatch(std::span<const BlockId>(keys, n),
                          std::span<cache::PolicyState *>(st, n));

        // Phase 2 — sieve prefetch: every gathered miss is about to
        // consult the pending set and the sieve tiers; start their
        // lines (pending home slot, IMCT slot, MCT home slot) toward
        // L1 before the in-order pass issues its dependent loads.
        for (uint32_t i = 0; i < n; ++i) {
            if (st[i] == nullptr) {
                pending.prefetch(keys[i]);
                fsieve_->prefetchMiss(keys[i]);
            }
        }

        // Phase 3 — decide + mutate, in batch order: bookkeeping
        // identical to processRequestInto, with the residency probe
        // already resolved. Policy transitions touch payloads and the
        // order book, never the index structure, so duplicates simply
        // retouch the same gathered slot.
        for (uint32_t i = 0; i < n; ++i) {
            const BlockId block = keys[i];
            const uint64_t page = trace::blockNrOf(block) /
                                  trace::kBlocksPerPage;
            access.block = block;
            access.completion =
                trace::interpolatedCompletion(req, base + i);

            ++rep.accesses;
            if (is_read)
                ++rep.read_accesses;

            if (st[i] != nullptr) {
                cache_.touchProbed(block, *st[i]);
                ++rep.hits;
                if (is_read)
                    ++rep.read_hits;
                else
                    ++rep.write_hits;
                if (page != last_hit_page) {
                    last_hit_page = page;
                    if (is_read) {
                        ++rep.ssd_read_ios;
                        stageRead(req.time, block);
                    } else {
                        ++rep.ssd_write_ios;
                        stageWrite(req.time, block);
                    }
                }
                fsieve_->onHit(access);
                continue;
            }

            if (pending.contains(block))
                continue; // allocation already in flight
            if (fsieve_->onMiss(access) == AllocDecision::Allocate) {
                notePending(block);
                const bool new_unit = page != last_alloc_page;
                last_alloc_page = page;
                pushAlloc(
                    PendingAlloc{access.completion, block, new_unit});
            }
        }
    }
}

void
Appliance::processRequest(const trace::Request &req)
{
    // Size the report vector before draining so the reference stays
    // valid: every drained completion is <= req.time, so the drain's
    // own reportFor never resizes past this one.
    DailyReport &rep = reportFor(req.time);
    drainAllocations(req.time);
    processRequestInto(req, rep);
}

void
Appliance::processBatch(std::span<const trace::Request> batch)
{
    if (batch.empty())
        return;
    // One day-report lookup per batch: the sim:: facade slices batches
    // at calendar-day boundaries, so every request lands in one day.
    DailyReport &rep = reportFor(batch.front().time);
    SIEVE_DCHECK(util::dayOf(batch.front().time) ==
                     util::dayOf(batch.back().time),
                 "processBatch: batch straddles a calendar-day boundary");
    // The flat hot path is claimed allocation-free per batch; the only
    // exemptions are the explicit amortized-growth points (sieve
    // tables, the pending set, the allocation heap).
    SIEVE_ASSERT_NO_ALLOC_WHEN(flatEnginesOnly());
    if (flatEnginesOnly() && batchKernelEnabled()) {
        // Batched lookup kernel: same per-request drain cadence as the
        // scalar loop (bit-identity depends on it — a drain can insert
        // into the cache, which would invalidate gathered pointers and
        // flip later probes), with each request's blocks resolved
        // through the probe-gather -> sieve-prefetch -> decide phases.
        for (const trace::Request &req : batch) {
            drainAllocations(req.time);
            processRequestProbed(req, rep);
        }
        return;
    }
    for (const trace::Request &req : batch) {
        drainAllocations(req.time);
        processRequestInto(req, rep);
    }
}

void
Appliance::finishDay(int day)
{
    SIEVE_CHECK(day > last_finished_day,
                "finishDay(%d) after finishDay(%d): days must strictly "
                "increase",
                day, last_finished_day);
    last_finished_day = day;

    const util::TimeUs day_end =
        (static_cast<util::TimeUs>(day) + 1) * util::kUsPerDay;
    drainAllocations(day_end - 1);
    flushStorage();

    // Self-tuning epoch: after the day's allocations have drained,
    // let the sieve close its shadow epoch (the adaptive sieve may
    // switch thresholds here) and record the outcome in the day's
    // tuning columns. Thresholds are model-side data, so the columns
    // stay bit-identical across storage backends and shard layouts.
    if (fsieve_ || policy_) {
        const std::optional<SieveTuning> before =
            fsieve_ ? fsieve_->tuning() : policy_->tuning();
        if (fsieve_)
            fsieve_->onDayClose(day);
        else
            policy_->onDayClose(day);
        const std::optional<SieveTuning> after =
            fsieve_ ? fsieve_->tuning() : policy_->tuning();
        if (after && day >= 0) {
            const size_t slot = static_cast<size_t>(day);
            if (slot >= reports.size())
                reports.resize(slot + 1);
            DailyReport &rep = reports[slot];
            rep.tune_t1 = after->t1;
            rep.tune_t2 = after->t2;
            rep.tune_switches =
                after->switches - (before ? before->switches : 0);
        }
    }

    if (!selector_)
        return;

    // Epoch boundary: select, batch-install with cancellation, and
    // attribute the moves to the day they serve.
    const std::vector<BlockId> next_set = selector_->endOfEpoch();
    const cache::BatchReplaceResult moved =
        backend_ ? cache_.batchReplace(next_set, &batch_alloc_scratch_,
                                       &batch_evict_scratch_)
                 : cache_.batchReplace(next_set);

    const size_t serve_day = static_cast<size_t>(day) + 1;
    if (serve_day >= reports.size())
        reports.resize(serve_day + 1);
    reports[serve_day].batch_moved_blocks += moved.allocated;
    if (backend_) {
        // The batch's device writes land staggered over the serving
        // day; attribute them to its first instant.
        stageBatchMove(static_cast<util::TimeUs>(serve_day) *
                       util::kUsPerDay);
        flushStorage();
    }

    if (cfg.charge_batch_to_occupancy && occupancy_) {
        // Ablation: charge the batch as 4 KB writes spread uniformly
        // over the first 6 hours of the serving day.
        const uint64_t ios =
            (moved.allocated + trace::kBlocksPerPage - 1) /
            trace::kBlocksPerPage;
        const util::TimeUs start = serve_day * util::kUsPerDay;
        const util::TimeUs span = 6 * util::kUsPerHour;
        for (uint64_t k = 0; k < ios; ++k) {
            const util::TimeUs t =
                start + (span * k) / (ios ? ios : 1);
            occupancy_->recordWrites(t, 1);
        }
    }
}

void
Appliance::finishTrace()
{
    drainAllocations(UINT64_MAX);
    if (backend_) {
        flushStorage();
        backend_->flush();
    }
}

const ssd::DriveOccupancyTracker *
Appliance::occupancy() const
{
    return occupancy_.get();
}

const char *
Appliance::policyName() const
{
    if (fsieve_)
        return fsieve_->name();
    return policy_ ? policy_->name() : selector_->name();
}

uint64_t
Appliance::metastateBytes() const
{
    if (fsieve_)
        return fsieve_->metastateBytes();
    return policy_ ? policy_->metastateBytes()
                   : selector_->metastateBytes();
}

void
Appliance::checkInvariants() const
{
    // Exactly one allocation mechanism.
    const int engines = (fsieve_.has_value() ? 1 : 0) +
                        (policy_ ? 1 : 0) + (selector_ ? 1 : 0);
    SIEVE_CHECK(engines == 1,
                "appliance must have exactly one of sieve spec / "
                "policy / selector, has %d", engines);
    cache_.checkInvariants();

    // Every in-flight allocation is tracked in both structures, and
    // the pending guard keeps the queue duplicate-free.
    SIEVE_CHECK(pending.size() == alloc_queue.size(),
                "%zu pending blocks vs %zu queued allocations",
                pending.size(), alloc_queue.size());
    SIEVE_CHECK(std::is_heap(alloc_queue.begin(), alloc_queue.end(),
                             std::greater<PendingAlloc>()),
                "allocation queue lost its heap ordering");
    pending.checkInvariants();

    for (const DailyReport &rep : reports) {
        SIEVE_CHECK(rep.hits <= rep.accesses,
                    "daily hits %llu exceed accesses %llu",
                    static_cast<unsigned long long>(rep.hits),
                    static_cast<unsigned long long>(rep.accesses));
        SIEVE_CHECK(rep.read_accesses <= rep.accesses);
        SIEVE_CHECK(rep.read_hits + rep.write_hits == rep.hits,
                    "read hits + write hits must equal total hits");
        SIEVE_CHECK(rep.read_hits <= rep.read_accesses);
        SIEVE_CHECK(rep.ssd_read_ios <= rep.read_hits);
        SIEVE_CHECK(rep.ssd_write_ios <= rep.write_hits);
        SIEVE_CHECK(rep.ssd_alloc_ios <= rep.allocation_write_blocks);
        // Storage observation never exceeds what the model charged
        // that day (staged-but-undrained ops account for the slack).
        SIEVE_CHECK(rep.storage_read_ios + rep.storage_read_errors <=
                        rep.ssd_read_ios,
                    "measured reads exceed model-charged reads");
        SIEVE_CHECK(rep.storage_write_ios + rep.storage_write_errors <=
                        rep.ssd_write_ios + rep.ssd_alloc_ios +
                            rep.batch_moved_blocks,
                    "measured writes exceed model-charged writes");
    }

    if (backend_) {
        backend_->checkInvariants();
        // Cross-layer audit: every model-charged device I/O is staged
        // exactly once, so model counts equal the backend's completed
        // plus failed ops plus whatever is still staged. Reads are
        // exact; writes carry the batch-move slack (page-coalesced
        // batch installs emit at most one write per moved block).
        const DailyReport t = sumReports(reports);
        const storage::BackendStats &st = backend_->stats();
        const uint64_t meas_r =
            st.read_ops + st.read_errors + n_stage_reads_;
        SIEVE_CHECK(meas_r == t.ssd_read_ios,
                    "backend observed %llu reads but the model "
                    "charged %llu",
                    static_cast<unsigned long long>(meas_r),
                    static_cast<unsigned long long>(t.ssd_read_ios));
        const uint64_t meas_w =
            st.write_ops + st.write_errors + n_stage_writes_;
        const uint64_t model_w = t.ssd_write_ios + t.ssd_alloc_ios;
        SIEVE_CHECK(meas_w >= model_w &&
                        meas_w <= model_w + t.batch_moved_blocks,
                    "backend observed %llu writes outside the model "
                    "envelope [%llu, %llu]",
                    static_cast<unsigned long long>(meas_w),
                    static_cast<unsigned long long>(model_w),
                    static_cast<unsigned long long>(
                        model_w + t.batch_moved_blocks));
    }

    if (fsieve_)
        fsieve_->checkInvariants();
    if (policy_)
        policy_->checkInvariants();
    if (selector_)
        selector_->checkInvariants();
}

} // namespace core
} // namespace sievestore
