#include "core/appliance.hpp"

#include "trace/expand.hpp"
#include "util/check.hpp"
#include "util/logging.hpp"
#include "util/sim_time.hpp"

namespace sievestore {
namespace core {

using trace::BlockId;

namespace {

/** Pick the cache engine: custom policy if configured, else flat. */
cache::BlockCache
makeCache(const ApplianceConfig &config)
{
    if (config.replacement)
        return cache::BlockCache(config.cache_blocks,
                                 config.replacement());
    return cache::BlockCache(config.cache_blocks, config.eviction);
}

} // namespace

DailyReport
sumReports(const std::vector<DailyReport> &days)
{
    DailyReport sum;
    for (const auto &d : days) {
        sum.accesses += d.accesses;
        sum.read_accesses += d.read_accesses;
        sum.hits += d.hits;
        sum.read_hits += d.read_hits;
        sum.write_hits += d.write_hits;
        sum.allocation_write_blocks += d.allocation_write_blocks;
        sum.batch_moved_blocks += d.batch_moved_blocks;
        sum.ssd_read_ios += d.ssd_read_ios;
        sum.ssd_write_ios += d.ssd_write_ios;
        sum.ssd_alloc_ios += d.ssd_alloc_ios;
    }
    return sum;
}

Appliance::Appliance(ApplianceConfig config,
                     std::unique_ptr<AllocationPolicy> policy)
    : cfg(config), policy_(std::move(policy)), cache_(makeCache(config))
{
    if (!policy_)
        util::fatal("appliance requires an allocation policy");
    if (cfg.track_occupancy)
        occupancy_ =
            std::make_unique<ssd::DriveOccupancyTracker>(cfg.ssd);
}

Appliance::Appliance(ApplianceConfig config,
                     std::unique_ptr<DiscreteSelector> selector)
    : cfg(config), selector_(std::move(selector)),
      cache_(makeCache(config))
{
    if (!selector_)
        util::fatal("appliance requires a discrete selector");
    if (cfg.track_occupancy)
        occupancy_ =
            std::make_unique<ssd::DriveOccupancyTracker>(cfg.ssd);
}

DailyReport &
Appliance::reportFor(util::TimeUs t)
{
    const size_t day = util::dayOf(t);
    if (day >= reports.size())
        reports.resize(day + 1);
    return reports[day];
}

void
Appliance::drainAllocations(util::TimeUs up_to)
{
    while (!alloc_queue.empty() &&
           alloc_queue.top().completion <= up_to) {
        const PendingAlloc ev = alloc_queue.top();
        alloc_queue.pop();
        pending.erase(ev.block);
        if (cache_.contains(ev.block))
            continue; // raced with a batch install
        cache_.insert(ev.block);
        DailyReport &rep = reportFor(ev.completion);
        ++rep.allocation_write_blocks;
        if (ev.new_io_unit) {
            ++rep.ssd_alloc_ios;
            if (occupancy_)
                occupancy_->recordWrites(ev.completion, 1);
        }
    }
}

void
Appliance::preload(const std::vector<BlockId> &blocks, int serve_day)
{
    const cache::BatchReplaceResult moved = cache_.batchReplace(blocks);
    const size_t day = serve_day < 0 ? 0 : static_cast<size_t>(serve_day);
    if (day >= reports.size())
        reports.resize(day + 1);
    reports[day].batch_moved_blocks += moved.allocated;
}

void
Appliance::processRequest(const trace::Request &req)
{
    drainAllocations(req.time);

    DailyReport &rep = reportFor(req.time);
    const bool is_read = req.op == trace::Op::Read;

    // Page-coalescing state: contiguous blocks of the same request that
    // share a 4 KB unit cost one SSD I/O (sub-4 KB charged as full).
    uint64_t last_hit_page = UINT64_MAX;
    uint64_t last_alloc_page = UINT64_MAX;

    trace::BlockAccess access;
    access.time = req.time;
    access.server = req.server;
    access.op = req.op;

    for (uint32_t i = 0; i < req.length_blocks; ++i) {
        const BlockId block = req.blockAt(i);
        const uint64_t page = trace::blockNrOf(block) /
                              trace::kBlocksPerPage;
        access.block = block;
        access.completion = trace::interpolatedCompletion(req, i);

        ++rep.accesses;
        if (is_read)
            ++rep.read_accesses;

        if (cache_.access(block)) {
            ++rep.hits;
            if (is_read)
                ++rep.read_hits;
            else
                ++rep.write_hits;
            if (page != last_hit_page) {
                last_hit_page = page;
                if (is_read) {
                    ++rep.ssd_read_ios;
                    if (occupancy_)
                        occupancy_->recordReads(req.time, 1);
                } else {
                    ++rep.ssd_write_ios;
                    if (occupancy_)
                        occupancy_->recordWrites(req.time, 1);
                }
            }
            if (policy_)
                policy_->onHit(access);
            if (selector_)
                selector_->observe(access);
            continue;
        }

        // Miss. Discrete selectors observe the access (SieveStore-D
        // logs *accesses*, not misses); continuous policies sieve it.
        if (selector_) {
            selector_->observe(access);
            continue;
        }
        if (pending.count(block))
            continue; // allocation already in flight
        if (policy_->onMiss(access) == AllocDecision::Allocate) {
            pending.insert(block);
            const bool new_unit = page != last_alloc_page;
            last_alloc_page = page;
            alloc_queue.push(
                PendingAlloc{access.completion, block, new_unit});
        }
    }
}

void
Appliance::finishDay(int day)
{
    SIEVE_CHECK(day > last_finished_day,
                "finishDay(%d) after finishDay(%d): days must strictly "
                "increase",
                day, last_finished_day);
    last_finished_day = day;

    const util::TimeUs day_end =
        (static_cast<util::TimeUs>(day) + 1) * util::kUsPerDay;
    drainAllocations(day_end - 1);

    if (!selector_)
        return;

    // Epoch boundary: select, batch-install with cancellation, and
    // attribute the moves to the day they serve.
    const std::vector<BlockId> next_set = selector_->endOfEpoch();
    const cache::BatchReplaceResult moved = cache_.batchReplace(next_set);

    const size_t serve_day = static_cast<size_t>(day) + 1;
    if (serve_day >= reports.size())
        reports.resize(serve_day + 1);
    reports[serve_day].batch_moved_blocks += moved.allocated;

    if (cfg.charge_batch_to_occupancy && occupancy_) {
        // Ablation: charge the batch as 4 KB writes spread uniformly
        // over the first 6 hours of the serving day.
        const uint64_t ios =
            (moved.allocated + trace::kBlocksPerPage - 1) /
            trace::kBlocksPerPage;
        const util::TimeUs start = serve_day * util::kUsPerDay;
        const util::TimeUs span = 6 * util::kUsPerHour;
        for (uint64_t k = 0; k < ios; ++k) {
            const util::TimeUs t =
                start + (span * k) / (ios ? ios : 1);
            occupancy_->recordWrites(t, 1);
        }
    }
}

void
Appliance::finishTrace()
{
    drainAllocations(UINT64_MAX);
}

const ssd::DriveOccupancyTracker *
Appliance::occupancy() const
{
    return occupancy_.get();
}

const char *
Appliance::policyName() const
{
    return policy_ ? policy_->name() : selector_->name();
}

uint64_t
Appliance::metastateBytes() const
{
    return policy_ ? policy_->metastateBytes()
                   : selector_->metastateBytes();
}

void
Appliance::checkInvariants() const
{
    // Exactly one allocation mechanism.
    SIEVE_CHECK((policy_ != nullptr) != (selector_ != nullptr),
                "appliance must have exactly one of policy/selector");
    cache_.checkInvariants();

    // Every in-flight allocation is tracked in both structures, and
    // the pending guard keeps the queue duplicate-free.
    SIEVE_CHECK(pending.size() == alloc_queue.size(),
                "%zu pending blocks vs %zu queued allocations",
                pending.size(), alloc_queue.size());

    for (const DailyReport &rep : reports) {
        SIEVE_CHECK(rep.hits <= rep.accesses,
                    "daily hits %llu exceed accesses %llu",
                    static_cast<unsigned long long>(rep.hits),
                    static_cast<unsigned long long>(rep.accesses));
        SIEVE_CHECK(rep.read_accesses <= rep.accesses);
        SIEVE_CHECK(rep.read_hits + rep.write_hits == rep.hits,
                    "read hits + write hits must equal total hits");
        SIEVE_CHECK(rep.read_hits <= rep.read_accesses);
        SIEVE_CHECK(rep.ssd_read_ios <= rep.read_hits);
        SIEVE_CHECK(rep.ssd_write_ios <= rep.write_hits);
        SIEVE_CHECK(rep.ssd_alloc_ios <= rep.allocation_write_blocks);
    }

    if (policy_)
        policy_->checkInvariants();
    if (selector_)
        selector_->checkInvariants();
}

} // namespace core
} // namespace sievestore
