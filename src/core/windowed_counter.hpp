/**
 * @file
 * Sliding-window miss counters (Section 3.3).
 *
 * "Logically, the IMCT and MCT track the number of misses over the past
 * W time units. However, since keeping miss counts for every time slice
 * is impractical, we discretize the time window into k subwindows of
 * W/k hours each. The implementation uses k counters to track the
 * misses in each subwindow and a counter to track the last time the
 * counters were updated. If during a miss, the current time window is
 * larger than the last-updated counter by k or more, then all counters
 * are inferred to be stale and zeroed out."
 *
 * WindowedCounter is that per-entry state; WindowSpec carries the (W, k)
 * configuration shared by all entries of a table.
 */

#ifndef SIEVESTORE_CORE_WINDOWED_COUNTER_HPP
#define SIEVESTORE_CORE_WINDOWED_COUNTER_HPP

#include <array>
#include <cstdint>

#include "util/check.hpp"
#include "util/logging.hpp"
#include "util/sim_time.hpp"

namespace sievestore {
namespace core {

/** Maximum supported subwindow count per window. */
constexpr uint32_t kMaxSubwindows = 8;

/** Window configuration: W split into k subwindows. */
struct WindowSpec
{
    /** Length of one subwindow in microseconds (W / k). */
    util::TimeUs subwindow_us = 2 * util::kUsPerHour;
    /** Number of subwindows (the paper tunes k = 4, W = 8 h). */
    uint32_t k = 4;

    /** Subwindow index containing time t. */
    uint64_t
    subwindowOf(util::TimeUs t) const
    {
        return t / subwindow_us;
    }

    /** The paper's tuned configuration: W = 8 h, k = 4. */
    static WindowSpec
    paperDefault()
    {
        return WindowSpec{2 * util::kUsPerHour, 4};
    }

    /** Arbitrary window length with the default k = 4. */
    static WindowSpec
    ofWindow(util::TimeUs window_us, uint32_t k = 4)
    {
        if (k == 0 || k > kMaxSubwindows)
            util::fatal("window subwindow count must be in [1, %u]",
                        kMaxSubwindows);
        if (window_us < k)
            util::fatal("window too short for %u subwindows", k);
        return WindowSpec{window_us / k, k};
    }
};

/**
 * Per-entry sliding-window counter: k saturating subwindow tallies plus
 * the last-updated subwindow index. 20 bytes per entry at k = 4.
 */
class WindowedCounter
{
  public:
    /**
     * Expire stale subwindows as of `cur_sub`, then record one miss.
     * @return the windowed total including this miss
     */
    uint32_t
    record(uint64_t cur_sub, const WindowSpec &spec)
    {
        advance(cur_sub, spec);
        auto &slot = counts[cur_sub % spec.k];
        if (slot < UINT16_MAX)
            ++slot;
        return total(cur_sub, spec);
    }

    /** Windowed total as of `cur_sub` (expiry-aware, no mutation). */
    uint32_t
    total(uint64_t cur_sub, const WindowSpec &spec) const
    {
        if (cur_sub >= last_sub + spec.k)
            return 0;
        uint32_t sum = 0;
        // Only subwindows in (cur_sub - k, last_sub] are live.
        for (uint32_t i = 0; i < spec.k; ++i) {
            const uint64_t sub = last_sub - i;
            if (sub + spec.k > cur_sub)
                sum += counts[sub % spec.k];
            if (sub == 0)
                break;
        }
        return sum;
    }

    /** True if every subwindow has expired as of `cur_sub`. */
    bool
    stale(uint64_t cur_sub, const WindowSpec &spec) const
    {
        return cur_sub >= last_sub + spec.k;
    }

    /**
     * Mark the counter live as of `cur_sub` without recording a miss
     * (expires aged subwindows). Used at MCT admission so a
     * freshly-admitted block is not mistaken for stale before its
     * first second-tier miss.
     */
    void
    touch(uint64_t cur_sub, const WindowSpec &spec)
    {
        advance(cur_sub, spec);
    }

    /** Zero all state. */
    void
    clear()
    {
        counts.fill(0);
        last_sub = 0;
    }

    /**
     * Audit the counter's structural invariants against `spec`:
     * only the first k subwindow slots may ever hold counts (record()
     * and advance() index modulo k), and the expiry-aware total can
     * never exceed what k saturated subwindows could hold. Aborts via
     * SIEVE_CHECK on violation.
     */
    void
    checkInvariants(const WindowSpec &spec) const
    {
        SIEVE_CHECK(spec.k >= 1 && spec.k <= kMaxSubwindows,
                    "window spec k=%u out of range", spec.k);
        SIEVE_CHECK(spec.subwindow_us > 0);
        for (uint32_t i = spec.k; i < kMaxSubwindows; ++i)
            SIEVE_CHECK(counts[i] == 0,
                        "subwindow slot %u beyond k=%u holds count %u",
                        i, spec.k, counts[i]);
        const uint64_t max_total =
            static_cast<uint64_t>(spec.k) * UINT16_MAX;
        SIEVE_CHECK(total(last_sub, spec) <= max_total);
        // A counter that reports stale must also report a zero total.
        if (stale(last_sub + spec.k, spec))
            SIEVE_CHECK(total(last_sub + spec.k, spec) == 0);
    }

  private:
    void
    advance(uint64_t cur_sub, const WindowSpec &spec)
    {
        if (cur_sub < last_sub) {
            // Out-of-order timestamps can occur when completion-time
            // allocations interleave with issue-time misses; clamp to
            // the newest subwindow seen.
            return;
        }
        if (cur_sub >= last_sub + spec.k) {
            counts.fill(0);
        } else {
            for (uint64_t s = last_sub + 1; s <= cur_sub; ++s)
                counts[s % spec.k] = 0;
        }
        last_sub = cur_sub;
    }

    std::array<uint16_t, kMaxSubwindows> counts{};
    uint64_t last_sub = 0;
};

} // namespace core
} // namespace sievestore

#endif // SIEVESTORE_CORE_WINDOWED_COUNTER_HPP
