/**
 * @file
 * RandSieve-C: randomized continuous sieving (Section 5.1).
 *
 * Allocates a uniformly random fraction (1 %) of misses. Included to
 * show that SieveStore "truly identifies and captures hot blocks
 * (beyond what random sampling would achieve)": because ~60 % of
 * accesses come from low-reuse blocks, random sampling spends most of
 * its allocations on pollution.
 */

#ifndef SIEVESTORE_CORE_RAND_SIEVE_HPP
#define SIEVESTORE_CORE_RAND_SIEVE_HPP

#include "core/alloc_policy.hpp"
#include "util/random.hpp"

namespace sievestore {
namespace core {

/** Allocate each miss independently with probability p. */
class RandSieveCPolicy : public AllocationPolicy
{
  public:
    explicit RandSieveCPolicy(double probability = 0.01, uint64_t seed = 7)
        : p(probability), rng(seed)
    {
    }

    AllocDecision
    onMiss(const trace::BlockAccess &) override
    {
        return rng.nextBool(p) ? AllocDecision::Allocate
                               : AllocDecision::Bypass;
    }

    const char *name() const override { return "RandSieve-C"; }

  private:
    double p;
    util::Rng rng;
};

} // namespace core
} // namespace sievestore

#endif // SIEVESTORE_CORE_RAND_SIEVE_HPP
