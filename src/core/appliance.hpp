/**
 * @file
 * The SieveStore appliance: cache + sieve + SSD accounting.
 *
 * Models the transparent caching appliance of Figure 4: every block
 * request of the ensemble flows through it; hits are served from the
 * SSD cache, misses are served by the backing ensemble and may trigger
 * allocation. Faithful to the paper's methodology (Section 4):
 *
 *  - accounting is at 512-byte block granularity; SSD costing is in
 *    4 KB I/O units with sub-4 KB I/Os charged as full units;
 *  - an allocation "was assumed to start at the time that the
 *    corresponding request in the original trace completed", with
 *    linear interpolation for individual blocks of multi-block requests
 *    (the allocation queue below);
 *  - continuous configurations use LRU replacement; discrete
 *    configurations batch-allocate at epoch boundaries with
 *    cancellation of retained blocks, and their staggered batch moves
 *    are excluded from drive-occupancy by default ("SieveStore-D
 *    assumes that batch allocation can be done during periods of low
 *    disk activity").
 */

#ifndef SIEVESTORE_CORE_APPLIANCE_HPP
#define SIEVESTORE_CORE_APPLIANCE_HPP

#include <climits>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "cache/block_cache.hpp"
#include "core/alloc_policy.hpp"
#include "core/discrete.hpp"
#include "core/sieve_spec.hpp"
#include "ssd/occupancy.hpp"
#include "storage/backend.hpp"
#include "trace/request.hpp"
#include "util/flat_index.hpp"
#include "util/flow_annotations.hpp"

namespace sievestore {
namespace core {

/** Appliance configuration. */
struct ApplianceConfig
{
    /** Cache capacity in 512-byte blocks (16 GB => 31.25 M blocks). */
    uint64_t cache_blocks = (16ULL << 30) / trace::kBlockBytes;
    /** SSD device model for occupancy/endurance accounting. */
    ssd::SsdModel ssd = ssd::SsdModel::intelX25E();
    /** Track per-minute drive occupancy (Figures 8/9). */
    bool track_occupancy = true;
    /** Charge discrete batch moves to drive occupancy (ablation). */
    bool charge_batch_to_occupancy = false;
    /**
     * Built-in eviction policy for the cache's flat engine (defaults
     * to the paper's LRU). Ignored when `replacement` is set.
     */
    cache::EvictionSpec eviction;
    /**
     * Custom replacement-policy factory; null selects the flat engine
     * with `eviction`. Used by the Section 3.1 oracle-replacement
     * experiments (OracleRetain needs per-day protected-set state).
     */
    std::function<std::unique_ptr<cache::ReplacementPolicy>()>
        replacement;
    /**
     * Built-in continuous sieve for the spec-driven constructor
     * (defaults to AOD). The flat build runs it through the
     * switch-dispatch FlatSieve engine; -DSIEVE_FLAT_SIEVE=OFF routes
     * it to the virtual reference policies instead. Ignored when
     * `allocation` is set or when a policy/selector is passed
     * explicitly.
     */
    SievePolicySpec sieve;
    /**
     * Custom allocation-policy factory; null selects `sieve` above.
     * Mirrors `replacement`: the flat-vs-reference differential suite
     * uses it to pin the virtual engine per appliance.
     */
    std::function<std::unique_ptr<AllocationPolicy>()> allocation;
    /**
     * Storage observation engine: every 4 KB I/O unit the analytic
     * model charges is also drained through this backend (analytic
     * echo, real O_DIRECT block file, or none). Observation only —
     * no decision above depends on the backend's answers.
     */
    storage::BackendConfig backend;
};

/** Per-calendar-day accounting (Figures 5, 6, 7). */
struct DailyReport
{
    // Model-side fields are sieve-flow taint sinks: they are the
    // paper's oracle accounting and must stay bit-identical across
    // storage backends, so measured data must never reach them.
    SIEVE_TAINT_SINK uint64_t accesses = 0;
    SIEVE_TAINT_SINK uint64_t read_accesses = 0;
    SIEVE_TAINT_SINK uint64_t hits = 0;
    SIEVE_TAINT_SINK uint64_t read_hits = 0;
    SIEVE_TAINT_SINK uint64_t write_hits = 0;
    /** Allocation-writes in 512-byte blocks (continuous policies). */
    SIEVE_TAINT_SINK uint64_t allocation_write_blocks = 0;
    /** Blocks moved by a discrete epoch batch, attributed to the day
     * the blocks serve (staggered during that day). */
    SIEVE_TAINT_SINK uint64_t batch_moved_blocks = 0;
    /** 4 KB SSD I/Os for hit service. */
    SIEVE_TAINT_SINK uint64_t ssd_read_ios = 0;
    SIEVE_TAINT_SINK uint64_t ssd_write_ios = 0;
    /** 4 KB SSD I/Os for allocation-writes. */
    SIEVE_TAINT_SINK uint64_t ssd_alloc_ios = 0;

    /**
     * Online sieve-tuning telemetry (adaptive sieve): the thresholds
     * in force after this day's close and the switches performed at
     * it (0 or 1 per day). All zero when the active sieve does not
     * tune itself. Model-side like the counters above: the tuner sees
     * only oracle accounting, never measured data. add() merges the
     * thresholds by max — they are day-level settings, not volumes —
     * and sums the switches, so whole-trace totals and shard merges
     * read "tightest setting reached / total switches".
     */
    SIEVE_TAINT_SINK uint64_t tune_t1 = 0;
    SIEVE_TAINT_SINK uint64_t tune_t2 = 0;
    SIEVE_TAINT_SINK uint64_t tune_switches = 0;

    /**
     * Measured device observation (storage::Backend): 4 KB reads and
     * writes that completed, failures, and summed measured latency,
     * attributed to the day the model charged the matching I/O. All
     * zero when the backend is BackendKind::None. The model fields
     * above never depend on these — backends observe, never decide —
     * so they are bit-identical across backends by construction.
     */
    // The storage_* columns are the sanctioned landing zone for
    // measured data: SIEVE_TAINT_SOURCE on a field makes every write
    // of tainted data into it an explicit, report-listed flow.
    SIEVE_TAINT_SOURCE uint64_t storage_read_ios = 0;
    SIEVE_TAINT_SOURCE uint64_t storage_write_ios = 0;
    SIEVE_TAINT_SOURCE uint64_t storage_read_errors = 0;
    SIEVE_TAINT_SOURCE uint64_t storage_write_errors = 0;
    SIEVE_TAINT_SOURCE uint64_t storage_read_ns = 0;
    SIEVE_TAINT_SOURCE uint64_t storage_write_ns = 0;

    /** Field-wise accumulation (whole-trace totals, shard merges). */
    void add(const DailyReport &other);

    uint64_t misses() const { return accesses - hits; }
    double
    hitRatio() const
    {
        return accesses ? static_cast<double>(hits) /
                              static_cast<double>(accesses)
                        : 0.0;
    }
    /** All allocation-write blocks including batch moves. */
    uint64_t
    totalAllocationBlocks() const
    {
        return allocation_write_blocks + batch_moved_blocks;
    }
    /** Total 512-byte SSD block operations (Figure 7's Y axis). */
    uint64_t
    totalSsdBlockOps() const
    {
        return hits + totalAllocationBlocks();
    }
};

/** Sum of daily reports. */
DailyReport sumReports(const std::vector<DailyReport> &days);

/**
 * Runtime switch for the batched FlatIndex lookup kernel inside
 * Appliance::processBatch (probe-gather -> sieve-prefetch -> decide
 * phases). Seeded ON at startup unless the build disables it
 * (-DSIEVE_BATCH_KERNEL=OFF) or the SIEVE_BATCH_SIMD-style environment
 * variable SIEVE_BATCH_KERNEL is "0". The kernel is bit-identical to
 * the scalar path by construction (proven by the batchkernel
 * differential suite), so this toggle exists for differential tests
 * and for benchmarking the scalar floor — not for correctness.
 */
bool batchKernelEnabled();

/**
 * Force the kernel dispatch (a no-op returning false when the build
 * disabled it). Not thread-safe: set before spawning replay workers.
 * @return the value actually in effect
 */
bool setBatchKernel(bool enabled);

/**
 * The appliance simulator. Construct with either a continuous
 * AllocationPolicy (SieveStore-C, AOD, WMNA, RandSieve-C) or a
 * DiscreteSelector (SieveStore-D, RandSieve-BlkD, Ideal); drive it with
 * time-ordered requests and day-boundary callbacks (the sim::
 * drivers do this).
 */
class Appliance
{
  public:
    /**
     * Continuous-allocation appliance driven by config.sieve (or the
     * config.allocation factory when set). This is the hot-path
     * constructor: with the flat build the sieve consultation is
     * switch dispatch with all policy state held by value.
     */
    explicit Appliance(ApplianceConfig config);

    /** Continuous-allocation appliance with an explicit policy. */
    Appliance(ApplianceConfig config,
              std::unique_ptr<AllocationPolicy> policy);

    /** Discrete-allocation appliance. */
    Appliance(ApplianceConfig config,
              std::unique_ptr<DiscreteSelector> selector);

    /**
     * Preload the cache before replay (the oracle's first-day set).
     * Moves are attributed to `serve_day`'s batch count.
     */
    void preload(const std::vector<trace::BlockId> &blocks, int serve_day);

    /** Process one multi-block request (time-ordered). */
    void processRequest(const trace::Request &req);

    /**
     * Process a time-ordered run of requests that all fall inside one
     * calendar day (the sim:: batching facade slices batches at day
     * boundaries). Semantically identical to calling processRequest on
     * each element; the batch form hoists the day-report lookup out of
     * the per-request path and, when every engine on the path is flat
     * (spec sieve + flat cache, no selector, no occupancy tracker),
     * arms SIEVE_ASSERT_NO_ALLOC over the whole batch.
     */
    void processBatch(std::span<const trace::Request> batch);

    /**
     * Close calendar day `day`: drain allocations due within it and,
     * for discrete appliances, run the epoch boundary — the new block
     * set is installed and its moves attributed to day + 1. Days must
     * strictly increase across calls (checked); the parallel sharded
     * driver relies on this monotone day cursor to audit that every
     * shard sits at the same epoch boundary at its day barriers.
     */
    void finishDay(int day);

    /**
     * Day most recently closed by finishDay(), or INT_MIN if none yet.
     * The replay drivers use it as the appliance's epoch cursor.
     */
    int lastFinishedDay() const { return last_finished_day; }

    /** Drain every pending allocation (end of trace). */
    void finishTrace();

    /** Per-day accounting; index = calendar day. */
    const std::vector<DailyReport> &daily() const { return reports; }

    /** Whole-trace totals. */
    DailyReport totals() const { return sumReports(reports); }

    /** Occupancy tracker (null when track_occupancy is false). */
    const ssd::DriveOccupancyTracker *occupancy() const;

    /** Storage observation backend (null for BackendKind::None). */
    const storage::Backend *storageBackend() const
    {
        return backend_.get();
    }

    /** Policy / selector name. */
    const char *policyName() const;

    const cache::BlockCache &blockCache() const { return cache_; }
    /** Mutable cache access (oracle experiments install protected
     * sets on the replacement policy between days). */
    cache::BlockCache &blockCache() { return cache_; }

    /** Metastate footprint of the sieve structures, in bytes. */
    uint64_t metastateBytes() const;

    /**
     * Audit appliance-level accounting: the cache and its policy agree
     * on residency, every in-flight allocation appears in both the
     * queue and the pending set, per-day reports are internally
     * consistent (hits never exceed accesses, read + write hits equal
     * total hits), and the sieve's own invariants hold. O(cache size);
     * aborts on violation. The sim drivers call this at day boundaries
     * when invariant auditing is enabled (see sim::DriverOptions).
     */
    void checkInvariants() const;

  private:
    DailyReport &reportFor(util::TimeUs t);
    void drainAllocations(util::TimeUs up_to);
    /** Shared per-request hot loop; `rep` is the request's day report. */
    void processRequestInto(const trace::Request &req, DailyReport &rep);
    /**
     * Batched-kernel variant of processRequestInto for the flat-engine
     * configuration: each chunk of <= cache::BlockCache::kProbeBatch
     * blocks runs probe-gather (one findBatch over the cache index),
     * then sieve-prefetch (IMCT/MCT/pending lines for the gathered
     * misses), then an in-order decide+mutate pass with bookkeeping
     * identical to the scalar loop. Bit-identical by construction:
     * nothing mutates the cache index within a request (allocations
     * drain between requests), so the gathered pointers and hit/miss
     * partition match what N scalar probes would see.
     * @pre flatEnginesOnly()
     */
    void processRequestProbed(const trace::Request &req, DailyReport &rep);
    /**
     * True when every engine on the request path is flat (spec-driven
     * sieve, flat cache, no discrete selector, no occupancy tracker):
     * the configurations whose hot loop is claimed — and then
     * enforced — to be allocation-free per batch.
     */
    bool flatEnginesOnly() const;
    void initOccupancy();

    /**
     * Storage observation staging: the request path appends one
     * StorageOp per model-charged 4 KB unit to a fixed-size stage
     * array and drains it through backend_ in batches, so the backend
     * sees the same batch-shaped submission the lookup kernel uses.
     * The stage/flush path allocates nothing (the arrays are members,
     * the flush's reportFor only re-reads day slots that already
     * exist), so the batch-level no-alloc regions stay armed across a
     * drain. All helpers early-return when no backend is configured.
     */
    void stageRead(util::TimeUs t, trace::BlockId block);
    void stageWrite(util::TimeUs t, trace::BlockId block);
    void stageTrim(util::TimeUs t, trace::BlockId block);
    void flushStorageReads();
    void flushStorageWrites();
    void flushStorageTrims();
    /** Drain all three stage arrays. */
    void flushStorage();
    /** Stage page-coalesced writes and trims for the discrete batch
     * move captured in the batch scratch vectors, at time `t`. */
    void stageBatchMove(util::TimeUs t);

    ApplianceConfig cfg;
    /** Spec-driven sieve engine (flat build; exactly one of these
     * three allocation mechanisms is active). */
    std::optional<FlatSieve> fsieve_;
    std::unique_ptr<AllocationPolicy> policy_;
    std::unique_ptr<DiscreteSelector> selector_;
    cache::BlockCache cache_;
    std::unique_ptr<ssd::DriveOccupancyTracker> occupancy_;

    /** Pending allocation, applied at block completion time. */
    struct PendingAlloc
    {
        util::TimeUs completion;
        trace::BlockId block;
        bool new_io_unit; ///< first block of its 4 KB unit in the request

        bool
        operator>(const PendingAlloc &o) const
        {
            return completion > o.completion;
        }
    };
    /** Schedule an allocation (min-heap push with growth exemption). */
    void pushAlloc(const PendingAlloc &ev);
    /** Track `block` as in flight (set insert with growth exemption). */
    void notePending(trace::BlockId block);

    /**
     * Min-heap on completion time, kept as a raw vector driven by
     * std::push_heap/pop_heap with the same std::greater comparator a
     * std::priority_queue would use — the standard specifies
     * priority_queue in terms of exactly these algorithms, so the
     * element order (including equal-completion ties, which feed LRU
     * recency) is bit-identical to the former priority_queue member.
     * A raw vector exposes capacity, letting the batch-level no-alloc
     * regions exempt only genuine growth.
     */
    std::vector<PendingAlloc> alloc_queue;
    /** In-flight allocation guard set (payload unused). */
    util::FlatIndex<uint8_t> pending;

    /** Epoch cursor: last day closed by finishDay(). */
    int last_finished_day = INT_MIN;

    std::vector<DailyReport> reports;

    /** Batch width of the storage observation drain. */
    static constexpr size_t kStorageStage = 256;
    /** Observation engine (null skips op emission entirely). */
    std::unique_ptr<storage::Backend> backend_;
    storage::StorageOp stage_reads_[kStorageStage];
    storage::StorageOp stage_writes_[kStorageStage];
    storage::StorageOp stage_trims_[kStorageStage];
    /** Per-batch measured latencies filled by the backend's
     * readBlocks/writeBlocks out-param (sieve-flow taint source). */
    SIEVE_TAINT_SOURCE uint32_t stage_lat_[kStorageStage];
    size_t n_stage_reads_ = 0;
    size_t n_stage_writes_ = 0;
    size_t n_stage_trims_ = 0;
    /** batchReplace move capture, reused across epoch boundaries. */
    std::vector<trace::BlockId> batch_alloc_scratch_;
    std::vector<trace::BlockId> batch_evict_scratch_;
};

} // namespace core
} // namespace sievestore

#endif // SIEVESTORE_CORE_APPLIANCE_HPP
