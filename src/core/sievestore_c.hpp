/**
 * @file
 * SieveStore-C: continuous, hysteresis-based lazy allocation
 * (Section 3.3).
 *
 * Every miss first consults the imprecise tier: the block's IMCT slot
 * count must reach t1 (tuned to 9). Qualified blocks are admitted to
 * the precise MCT, where they must accrue t2 (tuned to 4) *additional*
 * misses inside the sliding window (W = 8 h, k = 4 subwindows) before a
 * frame is allocated. The two-tier split bounds the exact metastate (the
 * MCT only ever holds IMCT-qualified blocks) while the precise check
 * stops aliased low-reuse blocks from polluting the cache.
 */

#ifndef SIEVESTORE_CORE_SIEVESTORE_C_HPP
#define SIEVESTORE_CORE_SIEVESTORE_C_HPP

#include <memory>

#include "core/alloc_policy.hpp"
#include "core/imct.hpp"
#include "core/mct.hpp"

namespace sievestore {
namespace core {

/** SieveStore-C tunables. */
struct SieveStoreCConfig
{
    /** IMCT slot count; the paper's deployment used ~8 GB of DRAM for
     * IMCT + MCT combined. Scale with the trace. */
    size_t imct_slots = 1 << 22;
    /** IMCT (first-tier) miss threshold t1 (paper: 9). */
    uint32_t t1 = 9;
    /** MCT (second-tier) additional-miss threshold t2 (paper: 4). */
    uint32_t t2 = 4;
    /** Sliding window W split into k subwindows (paper: 8 h / 4). */
    WindowSpec window = WindowSpec::paperDefault();
    /** Hash seed for the IMCT. */
    uint64_t seed = 0;
    /**
     * MCT pruning cadence: prune on every subwindow boundary
     * ("periodically we prune the MCT to eliminate stale blocks").
     */
    bool prune_on_subwindow = true;

    /** One-tier ablation: bypass the IMCT, admit every miss to the MCT
     * directly (requires t1 misses + t2 misses in the MCT to keep the
     * total threshold comparable). */
    bool mct_only = false;
    /** One-tier ablation: allocate straight from the IMCT at t1 + t2
     * (reproduces the aliasing-pollution motivation). */
    bool imct_only = false;
};

/** The two-tier continuous sieve. */
class SieveStoreCPolicy : public AllocationPolicy
{
  public:
    explicit SieveStoreCPolicy(SieveStoreCConfig config = {});

    AllocDecision onMiss(const trace::BlockAccess &access) override;

    /**
     * Hint the tables an onMiss(access) for this block is imminent:
     * prefetch the block's IMCT slot and MCT home slot. Pure — no
     * counter moves — so the appliance's batched miss path can issue
     * it for a whole gathered chunk before the in-order decide phase.
     */
    void prefetchMiss(trace::BlockId block) const;

    const char *name() const override;

    uint64_t metastateBytes() const override;

    /**
     * Audit the two-tier sieve's bookkeeping: both tiers share the
     * configured window; each tier's structure is internally
     * consistent; in two-tier mode every MCT entry and every
     * allocation traces back to exactly one IMCT qualification
     * (mct.size() + allocations <= imctQualified()); and when pruning
     * on subwindow boundaries, no MCT entry is stale as of the last
     * prune. Aborts on violation.
     */
    void checkInvariants() const override;

    const Imct &imct() const { return imct_; }
    const Mct &mct() const { return mct_; }
    const SieveStoreCConfig &config() const { return cfg; }

    /** Misses admitted past the IMCT tier (qualified for the MCT). */
    uint64_t imctQualified() const { return imct_qualified; }
    /** Allocations granted. */
    uint64_t allocations() const { return allocated; }

    /**
     * Adjust the MCT threshold online (used by the Section 7
     * auto-tuner). Takes effect on the next miss; blocks already in
     * the MCT are judged against the new value.
     */
    void setT2(uint32_t t2) { cfg.t2 = t2; }

    /** Adjust the IMCT threshold online (adaptive sieve). Takes effect
     * on the next miss; accumulated slot counts are kept, so a lowered
     * t1 admits already-warm blocks immediately. */
    void setT1(uint32_t t1) { cfg.t1 = t1; }

    /** Adjust both tier thresholds at once (adaptive-sieve epoch
     * switch). */
    void
    setThresholds(uint32_t t1, uint32_t t2)
    {
        cfg.t1 = t1;
        cfg.t2 = t2;
    }

  private:
    SieveStoreCConfig cfg;
    Imct imct_;
    Mct mct_;
    uint64_t last_prune_sub = 0;
    uint64_t imct_qualified = 0;
    uint64_t allocated = 0;
};

} // namespace core
} // namespace sievestore

#endif // SIEVESTORE_CORE_SIEVESTORE_C_HPP
