/**
 * @file
 * Unsieved baseline allocation policies (Section 3, Table 2).
 *
 * Allocate-on-demand (AOD) allocates on every miss; write-miss
 * no-allocate (WMNA) allocates only on read misses. Both maintain
 * metastate only for resident blocks — which is exactly why they cannot
 * sieve: the allocation decision "depends only on the current state of
 * the cache (hit/miss) and the type of the request (read/write)".
 */

#ifndef SIEVESTORE_CORE_UNSIEVED_HPP
#define SIEVESTORE_CORE_UNSIEVED_HPP

#include "core/alloc_policy.hpp"

namespace sievestore {
namespace core {

/** Allocate-on-demand: every miss allocates. */
class AodPolicy : public AllocationPolicy
{
  public:
    AllocDecision
    onMiss(const trace::BlockAccess &) override
    {
        return AllocDecision::Allocate;
    }

    const char *name() const override { return "AOD"; }
};

/** Write-miss no-allocate: only read misses allocate. */
class WmnaPolicy : public AllocationPolicy
{
  public:
    AllocDecision
    onMiss(const trace::BlockAccess &access) override
    {
        return access.op == trace::Op::Read ? AllocDecision::Allocate
                                            : AllocDecision::Bypass;
    }

    const char *name() const override { return "WMNA"; }
};

} // namespace core
} // namespace sievestore

#endif // SIEVESTORE_CORE_UNSIEVED_HPP
