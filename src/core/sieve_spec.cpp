#include "core/sieve_spec.hpp"

#include "core/unsieved.hpp"

namespace sievestore {
namespace core {

namespace {

/**
 * SieveStore-C state for specs that do not select it: a 1-slot IMCT
 * so the embedded value member costs nothing when inactive.
 */
SieveStoreCConfig
inactiveSieveC()
{
    SieveStoreCConfig cfg;
    cfg.imct_slots = 1;
    return cfg;
}

/**
 * Adaptive-sieve state for specs that do not select it: 1-slot
 * production and shadow IMCTs and 1-entry ghosts, so the embedded
 * value member costs nothing when inactive.
 */
AdaptiveSieveConfig
inactiveAdaptive()
{
    AdaptiveSieveConfig cfg;
    cfg.base = inactiveSieveC();
    cfg.ghost_budget = 1;
    cfg.imct_slots = 1;
    return cfg;
}

} // namespace

const char *
sieveKindName(SieveKind kind)
{
    switch (kind) {
      case SieveKind::Aod: return "AOD";
      case SieveKind::Wmna: return "WMNA";
      case SieveKind::SieveStoreC: return "SieveStore-C";
      case SieveKind::RandSieveC: return "RandSieve-C";
      case SieveKind::Adaptive: return "SieveStore-C/adaptive";
    }
    util::fatal("sieveKindName: unknown sieve kind %d",
                static_cast<int>(kind));
}

std::unique_ptr<AllocationPolicy>
makeReferenceSievePolicy(const SievePolicySpec &spec)
{
    switch (spec.kind) {
      case SieveKind::Aod:
        return std::make_unique<AodPolicy>();
      case SieveKind::Wmna:
        return std::make_unique<WmnaPolicy>();
      case SieveKind::SieveStoreC:
        return std::make_unique<SieveStoreCPolicy>(spec.sieve_c);
      case SieveKind::RandSieveC:
        return std::make_unique<RandSieveCPolicy>(spec.rand_probability,
                                                  spec.rand_seed);
      case SieveKind::Adaptive:
        return std::make_unique<AdaptiveSievePolicy>(spec.adaptive);
    }
    util::fatal("makeReferenceSievePolicy: unknown sieve kind %d",
                static_cast<int>(spec.kind));
}

FlatSieve::FlatSieve(const SievePolicySpec &spec)
    : kind_(spec.kind),
      sieve_c_(spec.kind == SieveKind::SieveStoreC ? spec.sieve_c
                                                   : inactiveSieveC()),
      rand_(spec.rand_probability, spec.rand_seed),
      adaptive_(spec.kind == SieveKind::Adaptive ? spec.adaptive
                                                 : inactiveAdaptive())
{
}

const char *
FlatSieve::name() const
{
    // SieveStore-C owns its name so the ablation suffixes
    // ("/imct-only", "/mct-only") stay in one place.
    if (kind_ == SieveKind::SieveStoreC)
        return sieve_c_.SieveStoreCPolicy::name();
    if (kind_ == SieveKind::Adaptive)
        return adaptive_.AdaptiveSievePolicy::name();
    return sieveKindName(kind_);
}

uint64_t
FlatSieve::metastateBytes() const
{
    // AOD/WMNA/RandSieve-C report zero like their reference policies;
    // the inactive embedded SieveStore-C state must not leak into
    // cost reports.
    if (kind_ == SieveKind::SieveStoreC)
        return sieve_c_.SieveStoreCPolicy::metastateBytes();
    if (kind_ == SieveKind::Adaptive)
        return adaptive_.AdaptiveSievePolicy::metastateBytes();
    return 0;
}

void
FlatSieve::checkInvariants() const
{
    if (kind_ == SieveKind::SieveStoreC)
        sieve_c_.SieveStoreCPolicy::checkInvariants();
    else if (kind_ == SieveKind::Adaptive)
        adaptive_.AdaptiveSievePolicy::checkInvariants();
}

} // namespace core
} // namespace sievestore
