#include "trace/synthetic.hpp"

#include <algorithm>
#include <cmath>

#include "util/alloc_guard.hpp"
#include "util/hashing.hpp"
#include "util/logging.hpp"
#include "util/sim_time.hpp"

namespace sievestore {
namespace trace {

using util::TimeUs;

int
SyntheticConfig::calendarDays() const
{
    const double end_hour = start_hour + duration_hours;
    return static_cast<int>(std::ceil(end_hour / 24.0));
}

uint64_t
SyntheticConfig::scaledBytes(uint64_t bytes) const
{
    return static_cast<uint64_t>(static_cast<double>(bytes) * scale);
}

SyntheticEnsembleGenerator::SyntheticEnsembleGenerator(
        const EnsembleConfig &ensemble, std::vector<ServerProfile> profiles_,
        SyntheticConfig config)
    : ensemble_(ensemble), profiles(std::move(profiles_)), config_(config)
{
    if (profiles.size() != ensemble_.serverCount())
        util::fatal("expected %zu server profiles, got %zu",
                    ensemble_.serverCount(), profiles.size());
    if (config_.scale <= 0.0 || config_.scale > 1.0)
        util::fatal("synthetic scale must be in (0, 1], got %f",
                    config_.scale);
    for (const auto &p : profiles) {
        if (p.singleton_frac + p.low_reuse_frac > 1.0)
            util::fatal("cold-class fractions exceed 1");
        if (p.hot_block_frac <= 0.0 || p.hot_block_frac >= 0.5)
            util::fatal("hot_block_frac must be in (0, 0.5)");
    }
    planHotSets();
}

std::vector<ServerProfile>
SyntheticEnsembleGenerator::paperProfiles(const EnsembleConfig &ensemble)
{
    // Footprint weights model per-server activity (not just capacity):
    // the paper's busy servers (Proj, Usr, Src1/2, Prxy by request count)
    // dominate the daily footprint. Skew personalities implement O2:
    // Prxy is extremely skewed, Src1 nearly skewless (Fig. 3(a)); Web
    // concentrates its hot set on volume 0 (Fig. 3(b)); Stg's skew
    // varies wildly day-to-day (Fig. 3(c)).
    struct P
    {
        const char *key;
        double weight, hot_frac, median, sigma, giants, day_sigma, read,
            scan_hour;
    };
    static const P table[] = {
        // key     weight hotfrac med  sig   giant daysig read scan@
        {"Usr",    1.9,   0.012,  48,  0.45, 0.010, 0.30, 0.75,  3.0},
        {"Proj",   2.6,   0.010,  45,  0.45, 0.008, 0.35, 0.80,  1.0},
        {"Prn",    0.55,  0.008,  39,  0.40, 0.006, 0.40, 0.55,  5.0},
        {"Hm",     0.22,  0.015,  45,  0.40, 0.010, 0.35, 0.45, 23.0},
        {"Rsrch",  0.55,  0.010,  42,  0.40, 0.008, 0.35, 0.75,  4.0},
        {"Prxy",   0.50,  0.030,  91,  0.55, 0.040, 0.25, 0.70,  9.0},
        {"Src1",   1.3,   0.003,  17,  0.40, 0.002, 0.30, 0.80,  2.0},
        {"Src2",   0.85,  0.010,  39,  0.40, 0.008, 0.35, 0.80,  0.0},
        {"Stg",    0.45,  0.012,  45,  0.45, 0.010, 1.10, 0.70, 22.0},
        {"Ts",     0.12,  0.015,  45,  0.40, 0.010, 0.40, 0.70,  6.0},
        {"Web",    0.85,  0.015,  53,  0.50, 0.015, 0.40, 0.70, 13.0},
        {"Mds",    0.75,  0.006,  25,  0.40, 0.004, 0.40, 0.85, 21.0},
        {"Wdev",   0.40,  0.012,  45,  0.40, 0.010, 0.45, 0.70,  4.0},
    };

    std::vector<ServerProfile> out;
    for (const auto &srv : ensemble.servers()) {
        const P *match = nullptr;
        for (const auto &p : table)
            if (srv.key == p.key)
                match = &p;
        ServerProfile prof;
        if (match) {
            prof.footprint_weight = match->weight;
            prof.hot_block_frac = match->hot_frac;
            prof.hot_median_count = match->median;
            prof.hot_count_sigma = match->sigma;
            prof.hot_giant_frac = match->giants;
            prof.hot_day_sigma = match->day_sigma;
            prof.read_frac = match->read;
            prof.scan_hour = match->scan_hour;
        }
        if (srv.key == "Web") {
            // Volume 0 holds most of the hot set (Fig. 3(b)).
            prof.volume_hot_weights = {0.82, 0.08, 0.05, 0.05};
        }
        if (srv.key == "Prxy") {
            prof.diurnal_amplitude = 0.7;
            prof.scan_windows_per_day = 2.5;
        }
        out.push_back(std::move(prof));
    }
    return out;
}

SyntheticEnsembleGenerator
SyntheticEnsembleGenerator::paper(const EnsembleConfig &ensemble,
                                  SyntheticConfig config)
{
    return SyntheticEnsembleGenerator(ensemble, paperProfiles(ensemble),
                                      config);
}

double
SyntheticEnsembleGenerator::dayCoverage(int day) const
{
    TimeUs begin, end;
    dayWindow(day, begin, end);
    if (end <= begin)
        return 0.0;
    return static_cast<double>(end - begin) /
           static_cast<double>(util::kUsPerDay);
}

void
SyntheticEnsembleGenerator::dayWindow(int day, TimeUs &begin,
                                      TimeUs &end) const
{
    const auto trace_begin = static_cast<TimeUs>(
        config_.start_hour * static_cast<double>(util::kUsPerHour));
    const auto trace_end = trace_begin + static_cast<TimeUs>(
        config_.duration_hours * static_cast<double>(util::kUsPerHour));
    const TimeUs day_begin = static_cast<TimeUs>(day) * util::kUsPerDay;
    const TimeUs day_end = day_begin + util::kUsPerDay;
    begin = std::max(trace_begin, day_begin);
    end = std::min(trace_end, day_end);
    if (end < begin)
        end = begin;
}

util::Rng
SyntheticEnsembleGenerator::rngFor(uint64_t stream, ServerId server,
                                   int day) const
{
    const uint64_t key = (stream << 40) ^
                         (static_cast<uint64_t>(server) << 32) ^
                         static_cast<uint64_t>(static_cast<uint32_t>(day));
    return util::Rng(util::seededHash(key, config_.seed));
}

void
SyntheticEnsembleGenerator::planHotSets()
{
    const int n_days = days();
    const size_t n_servers = ensemble_.serverCount();

    double weight_sum = 0.0;
    for (const auto &p : profiles)
        weight_sum += p.footprint_weight;

    hot_plans.assign(static_cast<size_t>(n_days), {});
    unique_budget.assign(static_cast<size_t>(n_days),
                         std::vector<double>(n_servers, 0.0));
    for (auto &day_plan : hot_plans)
        day_plan.resize(n_servers);

    for (size_t s = 0; s < n_servers; ++s) {
        const ServerProfile &prof = profiles[s];
        const ServerInfo &srv = ensemble_.servers()[s];

        // Hot-placement distribution over the server's volumes.
        std::vector<double> vol_weights = prof.volume_hot_weights;
        if (vol_weights.empty())
            vol_weights.assign(srv.volume_ids.size(), 1.0);
        if (vol_weights.size() != srv.volume_ids.size())
            util::fatal("server %s: %zu volume_hot_weights for %zu volumes",
                        srv.key.c_str(), vol_weights.size(),
                        srv.volume_ids.size());
        const util::AliasTable vol_picker(vol_weights);

        // The retained identity of hot pages across days. The
        // popularity percentile sticks to the page so per-page daily
        // counts are stable (giants remain giants until they drift out
        // of the hot set).
        struct PoolPage
        {
            VolumeId volume;
            uint64_t page;
            float read_prob;
            float base_count; ///< persistent daily count (pre-jitter)
        };
        std::vector<PoolPage> pool;

        for (int d = 0; d < n_days; ++d) {
            const double coverage = dayCoverage(d);
            if (coverage <= 0.0)
                continue;
            util::Rng rng = rngFor(0, static_cast<ServerId>(s), d);

            const double day_mult =
                rng.nextLogNormal(0.0, prof.footprint_day_sigma);
            const double unique =
                config_.unique_blocks_per_day * config_.scale *
                (prof.footprint_weight / weight_sum) * day_mult * coverage;
            unique_budget[static_cast<size_t>(d)][s] = unique;

            // The hot working set does not shrink on partial days —
            // only the observed counts do. Size the pool from the
            // full-day footprint so a 7-hour calendar day 0 still
            // exposes (at reduced counts) the same hot set that day 1
            // will reuse; counts are scaled by `coverage` below.
            const size_t n_pages = static_cast<size_t>(std::max(
                1.0, std::round(prof.hot_block_frac * unique /
                                (coverage *
                                 static_cast<double>(kBlocksPerPage)))));

            // Evolve the pool: retain with probability hot_overlap,
            // then grow/shrink to n_pages.
            std::vector<PoolPage> next;
            next.reserve(n_pages);
            for (const auto &p : pool) {
                if (next.size() < n_pages && rng.nextBool(prof.hot_overlap))
                    next.push_back(p);
            }
            while (next.size() < n_pages) {
                const size_t vi = vol_picker.sample(rng);
                const VolumeInfo &vol =
                    ensemble_.volume(srv.volume_ids[vi]);
                const uint64_t pages =
                    std::max<uint64_t>(1, vol.capacity_blocks /
                                              kBlocksPerPage);
                PoolPage p;
                p.volume = vol.id;
                p.page = rng.nextBelow(pages);
                p.read_prob = rng.nextBool(0.7) ? 0.92f : 0.35f;
                // Persistent base count: lognormal bulk or giant tail.
                double base;
                if (rng.nextBool(prof.hot_giant_frac)) {
                    const double u =
                        std::max(1e-6, 1.0 - rng.nextDouble());
                    base = prof.hot_giant_min *
                           std::pow(1.0 / u, prof.hot_zipf_exponent);
                } else {
                    base = rng.nextLogNormal(
                        std::log(prof.hot_median_count),
                        prof.hot_count_sigma);
                }
                p.base_count = static_cast<float>(
                    std::min(base, prof.hot_count_cap));
                next.push_back(p);
            }
            pool = std::move(next);

            // Today's per-page count: the persistent base, modulated by
            // the server-day intensity and a small per-page jitter.
            const double intensity =
                rng.nextLogNormal(0.0, prof.hot_day_sigma) * coverage;
            auto &plan = hot_plans[static_cast<size_t>(d)][s];
            plan.reserve(pool.size());
            for (const PoolPage &p : pool) {
                double c = static_cast<double>(p.base_count);
                c = std::min(c, prof.hot_count_cap);
                c *= intensity *
                     rng.nextLogNormal(0.0, prof.hot_page_sigma);
                HotPage hp;
                hp.volume = p.volume;
                hp.page = p.page;
                hp.count = static_cast<uint32_t>(
                    std::max(1.0, std::round(c)));
                hp.read_prob = p.read_prob;
                plan.push_back(hp);
            }
        }
    }
}

const std::vector<SyntheticEnsembleGenerator::HotPage> &
SyntheticEnsembleGenerator::hotPlan(ServerId server, int day) const
{
    return hot_plans.at(static_cast<size_t>(day)).at(server);
}

std::vector<double>
SyntheticEnsembleGenerator::minuteWeights(ServerId server, int day,
                                          util::Rng &rng,
                                          bool with_bursts) const
{
    const ServerProfile &prof = profiles[server];
    TimeUs begin, end;
    dayWindow(day, begin, end);
    const size_t minutes = static_cast<size_t>(
        (end - begin + util::kUsPerMinute - 1) / util::kUsPerMinute);
    std::vector<double> w(std::max<size_t>(1, minutes), 1.0);

    constexpr double kTwoPi = 2.0 * 3.14159265358979323846;
    for (size_t m = 0; m < w.size(); ++m) {
        const TimeUs t = begin + m * util::kUsPerMinute;
        const double hour =
            static_cast<double>(t % util::kUsPerDay) /
            static_cast<double>(util::kUsPerHour);
        const double phase =
            kTwoPi * (hour - prof.diurnal_peak_hour) / 24.0;
        w[m] = std::max(
            0.05, 1.0 + prof.diurnal_amplitude * std::cos(phase));
    }

    // Scan windows: sustained (1-4 h) periods of elevated scan traffic
    // (nightly backups, indexing). Applied to cold traffic only; hot
    // blocks are steady-state. Windows are anchored near the server's
    // preferred scan hour, so they rarely align across servers
    // (correlated ensemble-wide bursts are rare, Section 1).
    if (!with_bursts)
        return w;
    const double coverage = dayCoverage(day);
    const uint64_t windows = std::max<uint64_t>(
        coverage > 0.5 ? 1 : 0,
        rng.nextPoisson(prof.scan_windows_per_day * coverage));
    for (uint64_t b = 0; b < windows; ++b) {
        // Window start hour: preferred hour +/- ~2 h (wrapped).
        double hour =
            prof.scan_hour + rng.nextGaussian() * 2.0;
        hour = hour - 24.0 * std::floor(hour / 24.0);
        // Map the absolute hour onto this day's minute window.
        const double begin_hour =
            static_cast<double>(begin % util::kUsPerDay) /
            static_cast<double>(util::kUsPerHour);
        double rel_hour = hour - begin_hour;
        if (rel_hour < 0.0)
            rel_hour += 24.0;
        const size_t start = static_cast<size_t>(rel_hour * 60.0) %
                             w.size();
        const size_t len =
            static_cast<size_t>(rng.nextInRange(30, 90));
        const double mult =
            prof.scan_multiplier * (0.7 + 0.6 * rng.nextDouble());
        for (size_t m = start; m < std::min(start + len, w.size()); ++m)
            w[m] *= mult;
    }
    return w;
}

TimeUs
SyntheticEnsembleGenerator::sampleTime(
        const std::vector<double> &minute_weights, TimeUs begin, TimeUs end,
        util::Rng &rng) const
{
    // This helper assumes an alias table would be overkill at the call
    // rate involved; callers with high rates pre-build an AliasTable and
    // sample minutes directly (see emitHotRequests).
    (void)minute_weights;
    if (end <= begin + 1)
        return begin;
    return rng.nextInRange(begin, end - 1);
}

uint32_t
SyntheticEnsembleGenerator::sampleLatency(uint64_t bytes,
                                          util::Rng &rng) const
{
    // Seek/queue base + transfer at ~80 MB/s + exponential queueing
    // noise; typical of the 7.2k-10k RPM arrays behind the traced
    // servers.
    const double base = 2000.0;
    const double transfer = static_cast<double>(bytes) / 80.0;
    const double noise = rng.nextExponential(3000.0);
    double total = base + transfer + noise;
    if (total > 4.0e9)
        total = 4.0e9;
    return static_cast<uint32_t>(total);
}

void
SyntheticEnsembleGenerator::emitHotRequests(ServerId server, int day,
                                            std::vector<Request> &out) const
{
    const auto &plan = hotPlan(server, day);
    if (plan.empty())
        return;
    TimeUs begin, end;
    dayWindow(day, begin, end);
    if (end <= begin)
        return;

    util::Rng rng = rngFor(1, server, day);
    const ServerProfile &prof = profiles[server];
    const double coverage = dayCoverage(day);
    const uint32_t max_sessions = static_cast<uint32_t>(std::max(
        1.0, std::round(prof.hot_sessions_per_day * coverage)));

    // Sessions are spaced evenly in *cumulative traffic time*, not wall
    // time: activity to a hot block tracks the server's interactive
    // (diurnal) activity, so inter-session gaps stretch through quiet
    // hours roughly as the shared cache's residency does. Scan windows
    // are deliberately excluded — batch scans do not re-reference the
    // interactive hot set, and spacing against them would bunch a
    // server's hot sessions inside its own scan storms.
    util::Rng wrng = rngFor(3, server, day);
    const std::vector<double> load =
        minuteWeights(server, day, wrng, false);
    std::vector<double> prefix(load.size() + 1, 0.0);
    for (size_t m = 0; m < load.size(); ++m)
        prefix[m + 1] = prefix[m] + load[m];
    const double total_load = prefix.back();

    auto minute_at_quantile = [&](double q) {
        const double target = q * total_load;
        const auto it =
            std::upper_bound(prefix.begin(), prefix.end(), target);
        size_t m = static_cast<size_t>(it - prefix.begin());
        return m == 0 ? size_t(0) : std::min(m - 1, load.size() - 1);
    };

    for (const auto &hp : plan) {
        const uint32_t n_sessions = std::min(hp.count, max_sessions);
        const double step = 1.0 / static_cast<double>(n_sessions);
        // Page-specific phase so sessions of different pages interleave.
        const double phase = rng.nextDouble() * step;
        uint32_t remaining = hp.count;
        for (uint32_t s = 0; s < n_sessions; ++s) {
            // Spread the count evenly; early sessions take remainders.
            const uint32_t session =
                remaining / (n_sessions - s) +
                (remaining % (n_sessions - s) ? 1 : 0);
            // Near-periodic (in traffic time) with +/-20 % jitter.
            double q = phase + s * step +
                       (rng.nextDouble() - 0.5) * 0.4 * step;
            if (q < 0.0)
                q = 0.0;
            if (q >= 1.0)
                q = 1.0 - 1e-9;
            const size_t minute = minute_at_quantile(q);
            TimeUs t = begin + minute * util::kUsPerMinute +
                       rng.nextBelow(util::kUsPerMinute);
            for (uint32_t i = 0; i < session; ++i) {
                if (t >= end)
                    t = end - 1;
                Request req;
                req.time = t;
                req.volume = hp.volume;
                req.server = server;
                req.op =
                    rng.nextBool(hp.read_prob) ? Op::Read : Op::Write;
                req.offset_blocks = hp.page * kBlocksPerPage;
                req.length_blocks = static_cast<uint32_t>(kBlocksPerPage);
                if (rng.nextBool(config_.unaligned_frac)) {
                    // Misaligned 4 KB request (Section 4: ~6 %).
                    req.offset_blocks +=
                        rng.nextInRange(1, kBlocksPerPage - 1);
                }
                req.latency_us = sampleLatency(req.bytes(), rng);
                out.push_back(req);
                t += static_cast<TimeUs>(
                    rng.nextExponential(prof.session_gap_us));
            }
            remaining -= session;
        }
    }
}

void
SyntheticEnsembleGenerator::emitColdRequests(ServerId server, int day,
                                             std::vector<Request> &out) const
{
    const ServerProfile &prof = profiles[server];
    const ServerInfo &srv = ensemble_.servers()[server];
    TimeUs begin, end;
    dayWindow(day, begin, end);
    if (end <= begin)
        return;

    const double hot_blocks =
        static_cast<double>(hotPlan(server, day).size()) *
        static_cast<double>(kBlocksPerPage);
    double remaining =
        unique_budget[static_cast<size_t>(day)][server] - hot_blocks;
    if (remaining <= 0.0)
        return;

    util::Rng wrng = rngFor(4, server, day);
    const std::vector<double> weights =
        minuteWeights(server, day, wrng, true);
    const util::AliasTable minute_picker(weights);

    // Cold data is spread capacity-proportionally over volumes.
    std::vector<double> vol_weights;
    for (VolumeId v : srv.volume_ids)
        vol_weights.push_back(
            static_cast<double>(ensemble_.volume(v).capacity_blocks));
    const util::AliasTable vol_picker(vol_weights);

    // Extent lengths in 4 KB pages; mean ~12 pages (~48 KB scans).
    static const uint64_t kExtentPages[] = {1, 2, 4, 8, 16, 32, 64, 128};
    static const std::vector<double> kExtentWeights =
        {0.15, 0.15, 0.20, 0.20, 0.15, 0.08, 0.05, 0.02};
    const util::AliasTable extent_picker(kExtentWeights);

    constexpr uint64_t kMaxChunkBlocks = 32 * kBlocksPerPage; // 128 KB

    util::Rng rng = rngFor(2, server, day);
    while (remaining > 0.0) {
        uint64_t extent_blocks =
            kExtentPages[extent_picker.sample(rng)] * kBlocksPerPage;
        if (static_cast<double>(extent_blocks) > remaining)
            extent_blocks = std::max<uint64_t>(
                kBlocksPerPage,
                (static_cast<uint64_t>(remaining) / kBlocksPerPage) *
                    kBlocksPerPage);

        const VolumeInfo &vol =
            ensemble_.volume(srv.volume_ids[vol_picker.sample(rng)]);
        const uint64_t max_start =
            vol.capacity_blocks > extent_blocks
                ? vol.capacity_blocks - extent_blocks
                : 0;
        uint64_t start = max_start > 0 ? rng.nextBelow(max_start) : 0;
        start = (start / kBlocksPerPage) * kBlocksPerPage;

        // Reuse class: singleton, low-reuse (2-4), or warm (5-10).
        uint32_t reps;
        const double u = rng.nextDouble();
        if (u < prof.singleton_frac)
            reps = 1;
        else if (u < prof.singleton_frac + prof.low_reuse_frac)
            reps = static_cast<uint32_t>(rng.nextInRange(2, 4));
        else
            reps = static_cast<uint32_t>(rng.nextInRange(5, 10));

        for (uint32_t rep = 0; rep < reps; ++rep) {
            // The first scan rides the server's scan windows; re-scans
            // happen at unrelated times (a different job re-reading the
            // data), spread across the whole day.
            const size_t minute =
                rep == 0 ? minute_picker.sample(rng)
                         : static_cast<size_t>(rng.nextBelow(
                               std::max<uint64_t>(1, weights.size())));
            TimeUs t = begin + minute * util::kUsPerMinute +
                       rng.nextBelow(util::kUsPerMinute);
            const Op op =
                rng.nextBool(prof.read_frac) ? Op::Read : Op::Write;

            // Scan the extent as a chain of sequential chunk requests.
            uint64_t off = start;
            uint64_t left = extent_blocks;
            const bool unaligned = rng.nextBool(config_.unaligned_frac);
            if (unaligned)
                off += rng.nextInRange(1, kBlocksPerPage - 1);
            while (left > 0) {
                const uint64_t chunk = std::min(left, kMaxChunkBlocks);
                Request req;
                req.time = t;
                req.volume = vol.id;
                req.server = server;
                req.op = op;
                req.offset_blocks = off;
                req.length_blocks = static_cast<uint32_t>(chunk);
                req.latency_us = sampleLatency(req.bytes(), rng);
                if (req.time >= end)
                    req.time = end - 1;
                out.push_back(req);
                t += req.latency_us;
                off += chunk;
                left -= chunk;
            }
        }
        remaining -= static_cast<double>(extent_blocks);
    }
}

std::vector<Request>
SyntheticEnsembleGenerator::generateServerDay(ServerId server,
                                              int day) const
{
    if (day < 0 || day >= days())
        util::fatal("day %d outside trace (0..%d)", day, days() - 1);
    std::vector<Request> out;
    emitHotRequests(server, day, out);
    emitColdRequests(server, day, out);
    std::sort(out.begin(), out.end(), requestTimeLess);
    return out;
}

std::vector<Request>
SyntheticEnsembleGenerator::generateDay(int day) const
{
    if (day < 0 || day >= days())
        util::fatal("day %d outside trace (0..%d)", day, days() - 1);
    std::vector<Request> out;
    for (size_t s = 0; s < ensemble_.serverCount(); ++s) {
        emitHotRequests(static_cast<ServerId>(s), day, out);
        emitColdRequests(static_cast<ServerId>(s), day, out);
    }
    std::sort(out.begin(), out.end(), requestTimeLess);
    return out;
}

bool
SyntheticEnsembleGenerator::next(Request &out)
{
    while (stream_pos >= stream_buffer.size()) {
        if (stream_day >= days())
            return false;
        stream_buffer = generateDay(stream_day++);
        stream_pos = 0;
    }
    out = stream_buffer[stream_pos++];
    return true;
}

size_t
SyntheticEnsembleGenerator::nextBatch(std::span<Request> out)
{
    size_t filled = 0;
    while (filled < out.size()) {
        if (stream_pos >= stream_buffer.size()) {
            // Refill materializes the next calendar day; that
            // allocation is per-day, not per-batch.
            if (stream_day >= days())
                break;
            stream_buffer = generateDay(stream_day++);
            stream_pos = 0;
            continue;
        }
        // Steady state: one bulk copy out of the materialized day
        // instead of a virtual call per request.
        SIEVE_ASSERT_NO_ALLOC;
        const size_t n = std::min(out.size() - filled,
                                  stream_buffer.size() - stream_pos);
        std::copy_n(stream_buffer.begin() +
                        static_cast<ptrdiff_t>(stream_pos),
                    n, out.begin() + static_cast<ptrdiff_t>(filled));
        stream_pos += n;
        filled += n;
    }
    return filled;
}

void
SyntheticEnsembleGenerator::reset()
{
    stream_buffer.clear();
    stream_pos = 0;
    stream_day = 0;
}

} // namespace trace
} // namespace sievestore
