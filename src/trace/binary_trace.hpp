/**
 * @file
 * Compact binary trace format.
 *
 * Synthetic traces are deterministic given a seed, but generation is not
 * free; benches that share one workload cache it on disk in this format
 * (26 bytes/record vs ~70 for CSV, and no parsing). The format is
 * little-endian with an explicit magic/version header.
 */

#ifndef SIEVESTORE_TRACE_BINARY_TRACE_HPP
#define SIEVESTORE_TRACE_BINARY_TRACE_HPP

#include <cstdint>
#include <fstream>
#include <string>

#include "trace/trace_reader.hpp"

namespace sievestore {
namespace trace {

/** Magic number at the head of a binary trace file ("SSTR" + version). */
constexpr uint32_t kBinaryTraceMagic = 0x53535452;
constexpr uint32_t kBinaryTraceVersion = 1;

/** Append-only writer for the binary trace format. */
class BinaryTraceWriter
{
  public:
    explicit BinaryTraceWriter(const std::string &path);

    /** Append one request (must be fed in time order). */
    void write(const Request &req);

    /** Finalize the header (record count) and close. */
    void close();

    ~BinaryTraceWriter();

    uint64_t written() const { return count; }

  private:
    std::string path;
    std::ofstream out;
    uint64_t count = 0;
    util::TimeUs last_time = 0;
    bool closed = false;
};

/** Streaming reader for the binary trace format. */
class BinaryTraceReader : public TraceReader
{
  public:
    explicit BinaryTraceReader(const std::string &path);

    bool next(Request &out) override;
    /** Bulk decode: one file read per chunk instead of per record. */
    size_t nextBatch(std::span<Request> out) override;
    void reset() override;

    /** Record count from the header. */
    uint64_t size() const { return total; }

  private:
    std::string path;
    std::ifstream in;
    uint64_t total = 0;
    uint64_t consumed = 0;
};

} // namespace trace
} // namespace sievestore

#endif // SIEVESTORE_TRACE_BINARY_TRACE_HPP
