#include "trace/binary_trace.hpp"

#include <algorithm>
#include <cstring>

#include "util/alloc_guard.hpp"
#include "util/logging.hpp"

namespace sievestore {
namespace trace {

namespace {

// On-disk record layout (little-endian, 26 bytes).
struct PackedRecord
{
    uint64_t time;
    uint64_t offset_blocks;
    uint32_t length_blocks;
    uint32_t latency_us;
    uint16_t volume;
    uint8_t server;
    uint8_t op;
};

constexpr size_t kRecordBytes = 8 + 8 + 4 + 4 + 2 + 1 + 1;

void
pack(const Request &req, char *buf)
{
    PackedRecord r;
    r.time = req.time;
    r.offset_blocks = req.offset_blocks;
    r.length_blocks = req.length_blocks;
    r.latency_us = req.latency_us;
    r.volume = req.volume;
    r.server = req.server;
    r.op = static_cast<uint8_t>(req.op);
    char *p = buf;
    std::memcpy(p, &r.time, 8); p += 8;
    std::memcpy(p, &r.offset_blocks, 8); p += 8;
    std::memcpy(p, &r.length_blocks, 4); p += 4;
    std::memcpy(p, &r.latency_us, 4); p += 4;
    std::memcpy(p, &r.volume, 2); p += 2;
    std::memcpy(p, &r.server, 1); p += 1;
    std::memcpy(p, &r.op, 1);
}

void
unpack(const char *buf, Request &req)
{
    const char *p = buf;
    std::memcpy(&req.time, p, 8); p += 8;
    std::memcpy(&req.offset_blocks, p, 8); p += 8;
    std::memcpy(&req.length_blocks, p, 4); p += 4;
    std::memcpy(&req.latency_us, p, 4); p += 4;
    std::memcpy(&req.volume, p, 2); p += 2;
    uint8_t server = 0, op = 0;
    std::memcpy(&server, p, 1); p += 1;
    std::memcpy(&op, p, 1);
    req.server = server;
    req.op = static_cast<Op>(op);
}

} // namespace

BinaryTraceWriter::BinaryTraceWriter(const std::string &path_)
    : path(path_), out(path_, std::ios::binary)
{
    if (!out)
        util::fatal("cannot create binary trace '%s'", path.c_str());
    // Header: magic, version, record count (patched on close).
    uint32_t magic = kBinaryTraceMagic;
    uint32_t version = kBinaryTraceVersion;
    uint64_t count_placeholder = 0;
    out.write(reinterpret_cast<const char *>(&magic), 4);
    out.write(reinterpret_cast<const char *>(&version), 4);
    out.write(reinterpret_cast<const char *>(&count_placeholder), 8);
}

void
BinaryTraceWriter::write(const Request &req)
{
    if (closed)
        util::panic("BinaryTraceWriter::write after close");
    if (req.time < last_time)
        util::fatal("binary trace requires time-ordered requests");
    last_time = req.time;
    char buf[kRecordBytes];
    pack(req, buf);
    out.write(buf, kRecordBytes);
    ++count;
}

void
BinaryTraceWriter::close()
{
    if (closed)
        return;
    closed = true;
    out.seekp(8);
    out.write(reinterpret_cast<const char *>(&count), 8);
    out.close();
    if (!out)
        util::fatal("error finalizing binary trace '%s'", path.c_str());
}

BinaryTraceWriter::~BinaryTraceWriter()
{
    if (!closed)
        close();
}

BinaryTraceReader::BinaryTraceReader(const std::string &path_)
    : path(path_), in(path_, std::ios::binary)
{
    if (!in)
        util::fatal("cannot open binary trace '%s'", path.c_str());
    uint32_t magic = 0, version = 0;
    in.read(reinterpret_cast<char *>(&magic), 4);
    in.read(reinterpret_cast<char *>(&version), 4);
    in.read(reinterpret_cast<char *>(&total), 8);
    if (!in || magic != kBinaryTraceMagic)
        util::fatal("'%s' is not a SieveStore binary trace", path.c_str());
    if (version != kBinaryTraceVersion)
        util::fatal("'%s': unsupported trace version %u", path.c_str(),
                    version);
}

bool
BinaryTraceReader::next(Request &out)
{
    if (consumed >= total)
        return false;
    char buf[kRecordBytes];
    in.read(buf, kRecordBytes);
    if (!in)
        util::fatal("'%s': truncated binary trace (%llu of %llu records)",
                    path.c_str(),
                    static_cast<unsigned long long>(consumed),
                    static_cast<unsigned long long>(total));
    unpack(buf, out);
    ++consumed;
    return true;
}

size_t
BinaryTraceReader::nextBatch(std::span<Request> out)
{
    // One read() per up-to-64-record chunk instead of one per record;
    // decoding out of the stack buffer is allocation-free.
    constexpr size_t kChunkRecords = 64;
    char buf[kRecordBytes * kChunkRecords];
    size_t produced = 0;
    while (produced < out.size() && consumed < total) {
        const size_t want =
            std::min({out.size() - produced, kChunkRecords,
                      static_cast<size_t>(total - consumed)});
        in.read(buf, static_cast<std::streamsize>(want * kRecordBytes));
        if (!in)
            util::fatal(
                "'%s': truncated binary trace (%llu of %llu records)",
                path.c_str(),
                static_cast<unsigned long long>(consumed),
                static_cast<unsigned long long>(total));
        SIEVE_ASSERT_NO_ALLOC;
        for (size_t i = 0; i < want; ++i)
            unpack(buf + i * kRecordBytes, out[produced + i]);
        produced += want;
        consumed += want;
    }
    return produced;
}

void
BinaryTraceReader::reset()
{
    in.clear();
    in.seekg(16);
    consumed = 0;
}

} // namespace trace
} // namespace sievestore
