#include "trace/expand.hpp"

#include "util/logging.hpp"

namespace sievestore {
namespace trace {

util::TimeUs
interpolatedCompletion(const Request &req, uint32_t i)
{
    const uint32_t n = req.length_blocks;
    if (i >= n)
        util::panic("interpolatedCompletion: block index %u of %u", i, n);
    // (i + 1) / n of the latency, in integer arithmetic; monotone in i
    // and equal to the full latency for the last block.
    const uint64_t frac =
        (static_cast<uint64_t>(req.latency_us) * (i + 1)) / n;
    return req.time + frac;
}

void
expandRequest(const Request &req, std::vector<BlockAccess> &out)
{
    for (uint32_t i = 0; i < req.length_blocks; ++i) {
        BlockAccess a;
        a.time = req.time;
        a.completion = interpolatedCompletion(req, i);
        a.block = req.blockAt(i);
        a.server = req.server;
        a.op = req.op;
        out.push_back(a);
    }
}

BlockAccessStream::BlockAccessStream(TraceReader &reader_)
    : reader(reader_)
{
}

bool
BlockAccessStream::next(BlockAccess &out)
{
    while (true) {
        if (!have_request) {
            if (!reader.next(current))
                return false;
            if (current.length_blocks == 0) {
                // Tolerate zero-length records (seen in some trace
                // captures); they touch no blocks.
                continue;
            }
            have_request = true;
            index = 0;
            ++req_count;
        }
        out.time = current.time;
        out.completion = interpolatedCompletion(current, index);
        out.block = current.blockAt(index);
        out.server = current.server;
        out.op = current.op;
        ++index;
        ++access_count;
        if (index >= current.length_blocks)
            have_request = false;
        return true;
    }
}

void
BlockAccessStream::reset()
{
    reader.reset();
    have_request = false;
    index = 0;
    req_count = 0;
    access_count = 0;
}

} // namespace trace
} // namespace sievestore
