#include "trace/ensemble.hpp"

#include "util/logging.hpp"

namespace sievestore {
namespace trace {

ServerId
EnsembleConfig::addServer(const std::string &key, const std::string &name,
                          uint16_t volumes, uint16_t spindles,
                          uint64_t size_gb)
{
    if (volumes == 0)
        util::fatal("server '%s' must have at least one volume",
                    key.c_str());
    if (servers_.size() >= 255)
        util::fatal("ensemble limited to 255 servers");

    ServerInfo srv;
    srv.id = static_cast<ServerId>(servers_.size());
    srv.key = key;
    srv.name = name;
    srv.volumes = volumes;
    srv.spindles = spindles;
    srv.size_gb = size_gb;

    // Partition capacity evenly across the server's volumes; Table 1
    // reports only per-server totals.
    const uint64_t total_blocks = size_gb * 1000000000ULL / kBlockBytes;
    const uint64_t per_volume = total_blocks / volumes;
    for (uint16_t v = 0; v < volumes; ++v) {
        VolumeInfo vol;
        vol.id = static_cast<VolumeId>(volumes_.size());
        vol.server = srv.id;
        vol.index_in_server = v;
        vol.capacity_blocks = per_volume;
        srv.volume_ids.push_back(vol.id);
        volumes_.push_back(vol);
    }
    servers_.push_back(std::move(srv));
    return servers_.back().id;
}

const ServerInfo &
EnsembleConfig::server(ServerId id) const
{
    if (id >= servers_.size())
        util::fatal("server id %u out of range", unsigned(id));
    return servers_[id];
}

const VolumeInfo &
EnsembleConfig::volume(VolumeId id) const
{
    if (id >= volumes_.size())
        util::fatal("volume id %u out of range", unsigned(id));
    return volumes_[id];
}

const ServerInfo &
EnsembleConfig::serverByKey(const std::string &key) const
{
    for (const auto &s : servers_)
        if (s.key == key)
            return s;
    util::fatal("no server with key '%s'", key.c_str());
}

uint64_t
EnsembleConfig::totalSizeGb() const
{
    uint64_t total = 0;
    for (const auto &s : servers_)
        total += s.size_gb;
    return total;
}

uint64_t
EnsembleConfig::totalSpindles() const
{
    uint64_t total = 0;
    for (const auto &s : servers_)
        total += s.spindles;
    return total;
}

EnsembleConfig
EnsembleConfig::paperEnsemble()
{
    EnsembleConfig e;
    // Table 1 of the paper, verbatim.
    e.addServer("Usr", "User home dirs", 3, 16, 1367);
    e.addServer("Proj", "Project dirs", 5, 44, 2094);
    e.addServer("Prn", "Print server", 2, 6, 452);
    e.addServer("Hm", "Hardware monitor", 2, 6, 39);
    e.addServer("Rsrch", "Research projects", 3, 24, 277);
    e.addServer("Prxy", "Web proxy", 2, 4, 89);
    e.addServer("Src1", "Source control", 3, 12, 555);
    e.addServer("Src2", "Source control", 3, 14, 355);
    e.addServer("Stg", "Web staging", 2, 6, 113);
    e.addServer("Ts", "Terminal server", 1, 2, 22);
    e.addServer("Web", "Web/SQL server", 4, 17, 441);
    e.addServer("Mds", "Media server", 2, 16, 509);
    e.addServer("Wdev", "Test web server", 4, 12, 136);
    return e;
}

} // namespace trace
} // namespace sievestore
