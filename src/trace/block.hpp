/**
 * @file
 * Block addressing model.
 *
 * All accounting in the paper is at 512-byte block granularity ("All
 * other numbers count I/O blocks/accesses assuming 512-byte blocks for
 * accuracy", Section 4), while SSD costing uses 4 KB I/O units. A block
 * address is identified by (volume, block number) packed into a 64-bit
 * BlockId so that ensemble-wide structures (caches, sieves, counters) can
 * use flat hash tables keyed by a single integer.
 */

#ifndef SIEVESTORE_TRACE_BLOCK_HPP
#define SIEVESTORE_TRACE_BLOCK_HPP

#include <cstdint>

namespace sievestore {
namespace trace {

/** Bytes per accounting block (the paper's unit). */
constexpr uint64_t kBlockBytes = 512;

/** Bytes per SSD I/O unit used for cost assessment (Section 4). */
constexpr uint64_t kPageBytes = 4096;

/** 512-byte blocks per 4 KB page. */
constexpr uint64_t kBlocksPerPage = kPageBytes / kBlockBytes;

/** Index of a storage volume, global across the ensemble. */
using VolumeId = uint16_t;

/** Index of a server within the ensemble. */
using ServerId = uint8_t;

/** Packed (volume, block-number) identity of one 512-byte block. */
using BlockId = uint64_t;

constexpr int kVolumeShift = 48;
constexpr BlockId kBlockNrMask = (1ULL << kVolumeShift) - 1;

/** Pack a volume and a block number into a BlockId. */
constexpr BlockId
makeBlockId(VolumeId volume, uint64_t block_nr)
{
    return (static_cast<BlockId>(volume) << kVolumeShift) |
           (block_nr & kBlockNrMask);
}

/** Volume component of a BlockId. */
constexpr VolumeId
volumeOf(BlockId id)
{
    return static_cast<VolumeId>(id >> kVolumeShift);
}

/** Block-number component of a BlockId. */
constexpr uint64_t
blockNrOf(BlockId id)
{
    return id & kBlockNrMask;
}

/** 4 KB page index containing the block. */
constexpr uint64_t
pageOf(BlockId id)
{
    return blockNrOf(id) / kBlocksPerPage;
}

/** BlockId of the first block of the page containing `id`. */
constexpr BlockId
pageStart(BlockId id)
{
    return makeBlockId(volumeOf(id),
                       pageOf(id) * kBlocksPerPage);
}

} // namespace trace
} // namespace sievestore

#endif // SIEVESTORE_TRACE_BLOCK_HPP
