/**
 * @file
 * Trace source abstraction.
 *
 * A TraceReader yields time-ordered Requests. Concrete sources: in-memory
 * vectors (tests), MSR-Cambridge CSV files (real traces), the compact
 * binary format (cached synthetic traces), and the synthetic generator.
 */

#ifndef SIEVESTORE_TRACE_TRACE_READER_HPP
#define SIEVESTORE_TRACE_TRACE_READER_HPP

#include <cstddef>
#include <span>
#include <vector>

#include "trace/request.hpp"

namespace sievestore {
namespace trace {

/**
 * Default decode-batch size for the batched replay path: how many
 * requests a driver pulls per nextBatch() call. 64 requests (~2 KB)
 * amortize the virtual decode call and the downstream hand-off
 * without outgrowing L1.
 */
inline constexpr size_t kDefaultBatchRequests = 64;

/**
 * Pull-based request source. next() returns false at end of trace.
 * Implementations must yield requests in non-decreasing time order;
 * consumers may rely on it.
 */
class TraceReader
{
  public:
    virtual ~TraceReader() = default;

    /**
     * Fetch the next request.
     * @param out filled on success
     * @retval true a request was produced; false at end of stream
     */
    virtual bool next(Request &out) = 0;

    /**
     * Decode up to out.size() requests in one call, returning how many
     * were produced; fewer than out.size() only at end of stream. The
     * stream is interchangeable with next(): concatenating nextBatch()
     * results yields exactly the per-call sequence (property-tested
     * for every reader), and the two forms may be mixed freely. The
     * base implementation loops next(); bulk sources (VectorTrace,
     * BinaryTraceReader) override it to decode without per-request
     * virtual dispatch.
     */
    virtual size_t nextBatch(std::span<Request> out);

    /** Restart the stream from the beginning. */
    virtual void reset() = 0;
};

/** TraceReader over an in-memory, time-sorted request vector. */
class VectorTrace : public TraceReader
{
  public:
    /** @param requests must already be sorted by requestTimeLess. */
    explicit VectorTrace(std::vector<Request> requests);

    bool next(Request &out) override;
    size_t nextBatch(std::span<Request> out) override;
    void reset() override;

    const std::vector<Request> &requests() const { return reqs; }
    size_t size() const { return reqs.size(); }

  private:
    std::vector<Request> reqs;
    size_t pos = 0;
};

/** Drain a reader into a vector (for tests and small traces). */
std::vector<Request> drain(TraceReader &reader);

} // namespace trace
} // namespace sievestore

#endif // SIEVESTORE_TRACE_TRACE_READER_HPP
