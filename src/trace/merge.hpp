/**
 * @file
 * K-way time-ordered merge of trace sources.
 *
 * The MSR traces ship as one CSV per server; the ensemble-level
 * experiments need a single globally time-ordered stream. MergedTrace
 * performs a heap-based k-way merge over any set of TraceReaders.
 */

#ifndef SIEVESTORE_TRACE_MERGE_HPP
#define SIEVESTORE_TRACE_MERGE_HPP

#include <memory>
#include <queue>
#include <vector>

#include "trace/trace_reader.hpp"

namespace sievestore {
namespace trace {

/** Merge several time-ordered readers into one time-ordered stream. */
class MergedTrace : public TraceReader
{
  public:
    /** @param sources readers to merge; ownership is taken. */
    explicit MergedTrace(std::vector<std::unique_ptr<TraceReader>> sources);

    bool next(Request &out) override;
    void reset() override;

  private:
    struct HeapEntry
    {
        Request req;
        size_t source;
    };
    struct Later
    {
        bool
        operator()(const HeapEntry &a, const HeapEntry &b) const
        {
            // Min-heap on time; tie-break on source index for
            // deterministic interleaving.
            if (a.req.time != b.req.time)
                return a.req.time > b.req.time;
            return a.source > b.source;
        }
    };

    void prime();

    std::vector<std::unique_ptr<TraceReader>> sources;
    std::priority_queue<HeapEntry, std::vector<HeapEntry>, Later> heap;
    bool primed = false;
};

} // namespace trace
} // namespace sievestore

#endif // SIEVESTORE_TRACE_MERGE_HPP
