/**
 * @file
 * Whole-trace summary statistics (per-day, per-server).
 *
 * Feeds the Table 1 bench and sanity checks on the synthetic workload:
 * requests and block accesses per day, bytes accessed per day, unique
 * footprint per day, read fraction, alignment fraction.
 */

#ifndef SIEVESTORE_TRACE_TRACE_STATS_HPP
#define SIEVESTORE_TRACE_TRACE_STATS_HPP

#include <cstdint>
#include <vector>

#include "trace/trace_reader.hpp"

namespace sievestore {
namespace trace {

/** Aggregates for one calendar day of the trace. */
struct DayStats
{
    uint64_t requests = 0;
    uint64_t block_accesses = 0;
    uint64_t read_accesses = 0;
    uint64_t bytes = 0;
    /** Distinct 512-byte blocks touched. */
    uint64_t unique_blocks = 0;
    /** Requests whose offset and length are 4 KB aligned. */
    uint64_t aligned_requests = 0;

    double
    readFraction() const
    {
        return block_accesses
                   ? static_cast<double>(read_accesses) /
                         static_cast<double>(block_accesses)
                   : 0.0;
    }
};

/** Per-day and whole-trace aggregates. */
struct TraceStats
{
    std::vector<DayStats> days;
    uint64_t total_requests = 0;
    uint64_t total_block_accesses = 0;
    uint64_t total_bytes = 0;

    /** Mean daily unique footprint in bytes (days with traffic only). */
    double avgDailyUniqueBytes() const;
};

/**
 * Scan a trace and compute summary statistics. Uses one hash set per
 * day for unique-block counting; memory is proportional to the largest
 * daily footprint.
 */
TraceStats summarizeTrace(TraceReader &reader);

} // namespace trace
} // namespace sievestore

#endif // SIEVESTORE_TRACE_TRACE_STATS_HPP
