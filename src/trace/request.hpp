/**
 * @file
 * The block-device request record.
 *
 * A request is what the traces record: a multi-block read or write issued
 * by one server to one volume, with an issue timestamp and a measured
 * latency. Cache simulation operates on the per-block expansion of
 * requests (see expand.hpp).
 */

#ifndef SIEVESTORE_TRACE_REQUEST_HPP
#define SIEVESTORE_TRACE_REQUEST_HPP

#include <cstdint>

#include "trace/block.hpp"
#include "util/sim_time.hpp"

namespace sievestore {
namespace trace {

/** Request direction. */
enum class Op : uint8_t { Read = 0, Write = 1 };

/**
 * One multi-block I/O request as recorded below the buffer cache.
 */
struct Request
{
    /** Issue time, microseconds since trace origin (calendar midnight). */
    util::TimeUs time = 0;
    /** First 512-byte block touched (within `volume`). */
    uint64_t offset_blocks = 0;
    /** Number of 512-byte blocks touched (>= 1). */
    uint32_t length_blocks = 0;
    /** Measured request latency; completion = time + latency. */
    uint32_t latency_us = 0;
    /** Global volume index. */
    VolumeId volume = 0;
    /** Server that issued the request. */
    ServerId server = 0;
    /** Read or write. */
    Op op = Op::Read;

    /** Completion time of the whole request. */
    util::TimeUs completion() const { return time + latency_us; }

    /** BlockId of the i-th block covered by this request. */
    BlockId
    blockAt(uint32_t i) const
    {
        return makeBlockId(volume, offset_blocks + i);
    }

    /** Total bytes transferred. */
    uint64_t bytes() const { return uint64_t(length_blocks) * kBlockBytes; }
};

/** Strict-weak ordering by issue time (ties broken deterministically). */
inline bool
requestTimeLess(const Request &a, const Request &b)
{
    if (a.time != b.time)
        return a.time < b.time;
    if (a.volume != b.volume)
        return a.volume < b.volume;
    if (a.offset_blocks != b.offset_blocks)
        return a.offset_blocks < b.offset_blocks;
    return a.op < b.op;
}

/**
 * One 512-byte block access, the unit the cache simulator consumes.
 * Produced by expanding a Request; carries the linearly-interpolated
 * completion time of its parent request (Section 4: "We used linear
 * interpolation to infer completion times for individual blocks in cases
 * of large, multi-block requests").
 */
struct BlockAccess
{
    /** Issue time inherited from the parent request. */
    util::TimeUs time = 0;
    /** Interpolated completion time of this block. */
    util::TimeUs completion = 0;
    /** Identity of the block. */
    BlockId block = 0;
    /** Server that issued the parent request. */
    ServerId server = 0;
    /** Read or write. */
    Op op = Op::Read;
};

} // namespace trace
} // namespace sievestore

#endif // SIEVESTORE_TRACE_REQUEST_HPP
