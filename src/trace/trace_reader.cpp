#include "trace/trace_reader.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace sievestore {
namespace trace {

VectorTrace::VectorTrace(std::vector<Request> requests)
    : reqs(std::move(requests))
{
    if (!std::is_sorted(reqs.begin(), reqs.end(),
                        [](const Request &a, const Request &b) {
                            return a.time < b.time;
                        })) {
        util::fatal("VectorTrace requires time-sorted requests");
    }
}

bool
VectorTrace::next(Request &out)
{
    if (pos >= reqs.size())
        return false;
    out = reqs[pos++];
    return true;
}

void
VectorTrace::reset()
{
    pos = 0;
}

std::vector<Request>
drain(TraceReader &reader)
{
    std::vector<Request> out;
    Request r;
    while (reader.next(r))
        out.push_back(r);
    return out;
}

} // namespace trace
} // namespace sievestore
