#include "trace/trace_reader.hpp"

#include <algorithm>

#include "util/alloc_guard.hpp"
#include "util/logging.hpp"

namespace sievestore {
namespace trace {

size_t
TraceReader::nextBatch(std::span<Request> out)
{
    // Generic fallback: per-request virtual decode. Streaming parsers
    // (msr_csv) allocate per line, so no batch-wide no-alloc claim is
    // made here. // sieve-lint: allow(batch-guard)
    size_t produced = 0;
    while (produced < out.size() && next(out[produced]))
        ++produced;
    return produced;
}

VectorTrace::VectorTrace(std::vector<Request> requests)
    : reqs(std::move(requests))
{
    if (!std::is_sorted(reqs.begin(), reqs.end(),
                        [](const Request &a, const Request &b) {
                            return a.time < b.time;
                        })) {
        util::fatal("VectorTrace requires time-sorted requests");
    }
}

bool
VectorTrace::next(Request &out)
{
    if (pos >= reqs.size())
        return false;
    out = reqs[pos++];
    return true;
}

size_t
VectorTrace::nextBatch(std::span<Request> out)
{
    // Bulk copy straight out of the materialized vector — the decode
    // path of every benchmark replay, and allocation-free.
    SIEVE_ASSERT_NO_ALLOC;
    const size_t n = std::min(out.size(), reqs.size() - pos);
    std::copy_n(reqs.begin() + static_cast<ptrdiff_t>(pos), n,
                out.begin());
    pos += n;
    return n;
}

void
VectorTrace::reset()
{
    pos = 0;
}

std::vector<Request>
drain(TraceReader &reader)
{
    std::vector<Request> out;
    Request r;
    while (reader.next(r))
        out.push_back(r);
    return out;
}

} // namespace trace
} // namespace sievestore
