/**
 * @file
 * MSR-Cambridge block-trace CSV format.
 *
 * The paper's traces [14, 15] are the MSR Cambridge enterprise traces,
 * distributed as CSV with one record per request:
 *
 *   timestamp,hostname,disk,type,offset,size,duration
 *
 * where timestamp and duration are Windows FILETIME ticks (100 ns),
 * hostname is the server key ("usr", "prxy", ...), disk is the volume
 * index within the server, type is "Read"/"Write", and offset/size are
 * bytes. This reader maps records onto an EnsembleConfig, converts times
 * to microseconds relative to the calendar midnight preceding the first
 * record (the paper analyzes by calendar day, so a 5pm trace start lands
 * inside day 0), and converts byte extents to 512-byte block extents.
 *
 * With the real MSR traces on disk, every experiment in this repository
 * runs on them unmodified; without them, the synthetic generator stands
 * in (see synthetic.hpp).
 */

#ifndef SIEVESTORE_TRACE_MSR_CSV_HPP
#define SIEVESTORE_TRACE_MSR_CSV_HPP

#include <cstdint>
#include <fstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "trace/ensemble.hpp"
#include "trace/trace_reader.hpp"

namespace sievestore {
namespace trace {

/** FILETIME ticks (100 ns) per microsecond. */
constexpr uint64_t kTicksPerUs = 10;
/** FILETIME ticks per day. */
constexpr uint64_t kTicksPerDay = 24ULL * 3600 * 1000 * 1000 * kTicksPerUs;

/**
 * Streaming reader for one MSR-format CSV file.
 *
 * Records whose hostname is not present in the ensemble are skipped with
 * a (once-per-host) warning; malformed lines are fatal. Requests within
 * one MSR file are time-ordered; merging multiple per-server files is
 * done with MergedTrace (merge.hpp).
 */
class MsrCsvReader : public TraceReader
{
  public:
    /**
     * @param path         CSV file path
     * @param ensemble     maps hostnames/disks to volumes
     * @param origin_ticks FILETIME origin subtracted from timestamps; 0
     *                     selects the calendar midnight preceding the
     *                     first record
     */
    MsrCsvReader(const std::string &path, const EnsembleConfig &ensemble,
                 uint64_t origin_ticks = 0);

    bool next(Request &out) override;
    void reset() override;

    /** Origin actually used (after auto-detection). */
    uint64_t originTicks() const { return origin; }

    /** Number of records skipped for unknown host / unknown disk. */
    uint64_t skipped() const { return skipped_records; }

  private:
    bool parseLine(const std::string &line, Request &out);

    std::string path;
    const EnsembleConfig &ensemble;
    std::ifstream in;
    uint64_t origin;
    bool origin_fixed;
    uint64_t skipped_records = 0;
    std::unordered_map<std::string, ServerId> host_map;
    std::vector<bool> warned_hosts;
};

/**
 * Write requests in MSR CSV format (round-trip of MsrCsvReader). Used by
 * tests and by examples/trace_replay to fabricate a sample file.
 */
class MsrCsvWriter
{
  public:
    /**
     * @param path         output file path
     * @param ensemble     supplies hostnames and per-server disk indices
     * @param origin_ticks FILETIME value corresponding to request time 0
     */
    MsrCsvWriter(const std::string &path, const EnsembleConfig &ensemble,
                 uint64_t origin_ticks);

    /** Append one request. */
    void write(const Request &req);

    /** Flush and close the file. */
    void close();

    uint64_t written() const { return count; }

  private:
    const EnsembleConfig &ensemble;
    std::ofstream out;
    uint64_t origin;
    uint64_t count = 0;
};

} // namespace trace
} // namespace sievestore

#endif // SIEVESTORE_TRACE_MSR_CSV_HPP
