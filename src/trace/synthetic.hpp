/**
 * @file
 * Synthetic storage-ensemble workload generator.
 *
 * Stands in for the proprietary MSR Cambridge traces the paper analyzes.
 * The generator is a statistical model fitted to everything the paper
 * reports about those traces:
 *
 *  - O1 (popularity skew): ~1 % of each day's accessed blocks draw a
 *    large, day-varying share (14-53 %) of accesses; the block at the
 *    top-1 % boundary sees ~10 accesses/day; the top 0.01 % bin averages
 *    1000+; ~50 % of accessed blocks are singletons and the next ~47 %
 *    see <= 4 accesses.
 *  - O2 (skew variation): skew differs across servers (Prxy extreme,
 *    Src1 near-linear), across volumes of one server (Web vol-0 vs
 *    vol-1), and across days for one server (Stg); the composition of
 *    the ensemble top-1 % by server churns daily.
 *  - Trace shape: 13 servers (Table 1), one week starting 5:00 pm so
 *    calendar day 0 is a 7-hour partial day (the paper's "day 1
 *    outlier"), ~3:1 read:write, ~6 % of requests not 4 KB aligned,
 *    multi-block sequential scans, diurnal load with occasional bursts
 *    that rarely align across servers.
 *
 * Mechanically, each server-day is planned as (a) a persistent pool of
 * hot 4 KB pages -- lognormal-bulk daily counts plus a thin giant tail --
 * that drifts day-to-day with high overlap, accessed in short periodic
 * sessions spaced in traffic time (see ServerProfile field docs for the
 * cache-behaviour rationale), and (b) a population of sequential cold
 * extents scanned 1-10 times, concentrated into per-server scan
 * windows. The plan is scheduled onto a diurnal intensity profile and
 * emitted as time-sorted multi-block requests.
 *
 * Everything is deterministic given SyntheticConfig::seed.
 */

#ifndef SIEVESTORE_TRACE_SYNTHETIC_HPP
#define SIEVESTORE_TRACE_SYNTHETIC_HPP

#include <cstdint>
#include <vector>

#include "trace/ensemble.hpp"
#include "trace/trace_reader.hpp"
#include "util/random.hpp"

namespace sievestore {
namespace trace {

/**
 * Per-server workload personality. Defaults are neutral; the paper
 * ensemble gets curated values from paperProfiles().
 */
struct ServerProfile
{
    /** Relative share of the ensemble's daily unique blocks. */
    double footprint_weight = 1.0;
    /** Fraction of the server's daily unique blocks that are hot. */
    double hot_block_frac = 0.01;
    /**
     * Hot-page daily access counts are a lognormal bulk plus a thin
     * Pareto tail of "giants" (log/metadata-style blocks written
     * constantly). The lognormal bulk concentrates the hot mass at
     * ~20-120 accesses/day — blocks whose block-layer interarrival
     * exceeds an unsieved cache's residency (so LRU keeps re-faulting
     * them) but which a sieve admits permanently. The thin lower tail
     * puts the count at the top-1 % rank boundary at ~10/day (O1); the
     * giants reproduce Fig. 2(a)'s 1000+-access top bins. Each page's
     * base count is persistent across days (giants stay giants), which
     * is the cross-day stability SieveStore-D relies on.
     */
    double hot_median_count = 45.0;
    /** Lognormal sigma of the bulk count distribution. */
    double hot_count_sigma = 0.45;
    /** Fraction of hot pages that are giants. */
    double hot_giant_frac = 0.01;
    /** Minimum giant daily count. */
    double hot_giant_min = 800.0;
    /** Pareto exponent of the giant tail. */
    double hot_zipf_exponent = 0.7;
    /** Day-to-day lognormal jitter of an individual page's count. */
    double hot_page_sigma = 0.20;
    /**
     * Hot-block accesses arrive in periodic *sessions*: the server's
     * RAM buffer cache absorbs tight reuse, so the block layer sees a
     * short cluster of accesses each time the block falls out of the
     * buffer cache — at near-regular intervals (periodic jobs, polling,
     * cache-expiry cycles). The session count per day is bounded, so
     * inter-session gaps sit *above* an unsieved cache's residency: the
     * unsieved LRU re-faults the block at every session and captures
     * only within-session tails, while a sieve admits the block once,
     * permanently. This gap is where the paper's 35-50 % hit advantage
     * of SieveStore over AOD/WMNA lives.
     */
    double hot_sessions_per_day = 30.0;
    /** Mean gap between accesses inside a session, microseconds. */
    double session_gap_us = 30.0e6;
    /** Cap on a single page's daily access count (bends the curve top). */
    double hot_count_cap = 4000.0;
    /** Day-to-day lognormal sigma of hot intensity (skew-in-time). */
    double hot_day_sigma = 0.35;
    /** Day-to-day lognormal sigma of footprint size. */
    double footprint_day_sigma = 0.25;
    /** Probability a hot page is retained in the next day's hot set
     * (the paper: "significant overlap in successive days"). */
    double hot_overlap = 0.92;
    /** Relative hot-page placement weight per volume (empty: uniform). */
    std::vector<double> volume_hot_weights;
    /** Fraction of requests that are reads. */
    double read_frac = 0.75;
    /** Fraction of a day's non-hot unique blocks that are singletons. */
    double singleton_frac = 0.52;
    /** Fraction with 2-4 accesses (rest up to warm_frac: 5-10). */
    double low_reuse_frac = 0.46;
    /** Diurnal modulation amplitude in [0, 1). */
    double diurnal_amplitude = 0.5;
    /** Hour of peak load (local). */
    double diurnal_peak_hour = 14.0;
    /**
     * Scan windows: cold/scan traffic concentrates into a few sustained
     * windows per day (nightly backups, indexing, crawls) — the miss
     * storms that thrash an unsieved cache and drive WMNA's occupancy
     * peaks in Figure 8. Hot traffic does not follow these windows, and
     * windows are independent across servers (correlated ensemble-wide
     * bursts are rare).
     */
    double scan_windows_per_day = 2.0;
    /** Preferred local hour at which scan windows start. */
    double scan_hour = 2.0;
    /** Intensity multiplier inside a scan window. */
    double scan_multiplier = 8.0;
};

/** Global generator parameters. */
struct SyntheticConfig
{
    /** Master seed; all randomness derives from it. */
    uint64_t seed = 0x51e5e5704eULL;
    /**
     * Fraction of the paper's traffic volume to generate. Cache sizes
     * and SSD rates must be scaled identically (scaledBytes()).
     */
    double scale = 1.0 / 1024.0;
    /** Hour of day 0 at which the trace starts (paper: 5 pm). */
    double start_hour = 17.0;
    /** Trace length in hours (paper: one week). */
    double duration_hours = 7.0 * 24.0;
    /**
     * Ensemble-average unique blocks touched per full day at scale 1,
     * fitted to the paper's 685 GB/day average footprint.
     */
    double unique_blocks_per_day = 685.0e9 / 512.0;
    /** ~6 % of requests are not 4 KB aligned (Section 4). */
    double unaligned_frac = 0.06;

    /** Number of calendar days the trace spans (start + duration). */
    int calendarDays() const;
    /** Scale a full-size byte quantity (e.g. a 16 GB cache). */
    uint64_t scaledBytes(uint64_t bytes) const;
};

/**
 * The generator. Use as a TraceReader for a globally time-ordered
 * stream, or call generateDay() for day-at-a-time access.
 */
class SyntheticEnsembleGenerator : public TraceReader
{
  public:
    /**
     * @param ensemble ensemble description (usually paperEnsemble())
     * @param profiles one profile per server, same order as ensemble
     * @param config   global parameters
     */
    SyntheticEnsembleGenerator(const EnsembleConfig &ensemble,
                               std::vector<ServerProfile> profiles,
                               SyntheticConfig config);

    /** Curated profiles reproducing O1/O2 for the Table 1 ensemble. */
    static std::vector<ServerProfile>
    paperProfiles(const EnsembleConfig &ensemble);

    /** Convenience: paper ensemble + paper profiles. */
    static SyntheticEnsembleGenerator
    paper(const EnsembleConfig &ensemble, SyntheticConfig config);

    /**
     * All requests of one calendar day (time-sorted, all servers).
     * Deterministic and independent of generation order.
     * @param day 0-based calendar day; day 0 is the 7-hour partial day
     */
    std::vector<Request> generateDay(int day) const;

    /** Requests of one calendar day for a single server (time-sorted). */
    std::vector<Request> generateServerDay(ServerId server, int day) const;

    /** Number of calendar days in the trace. */
    int days() const { return config_.calendarDays(); }

    const SyntheticConfig &config() const { return config_; }
    const EnsembleConfig &ensemble() const { return ensemble_; }

    // TraceReader interface: streams day 0, day 1, ... transparently.
    bool next(Request &out) override;
    size_t nextBatch(std::span<Request> out) override;
    void reset() override;

  private:
    /** One hot page and its planned daily access count. */
    struct HotPage
    {
        VolumeId volume;
        uint64_t page;
        uint32_t count;
        float read_prob;
    };

    /** Fraction of calendar day `day` covered by the trace window. */
    double dayCoverage(int day) const;
    /** Trace window within calendar day `day`, microseconds. */
    void dayWindow(int day, util::TimeUs &begin, util::TimeUs &end) const;

    /** Deterministic per-(stream, server, day) RNG. */
    util::Rng rngFor(uint64_t stream, ServerId server, int day) const;

    /** Plan the hot sets for every server and day (done up front). */
    void planHotSets();

    /** Today's hot plan for a server. */
    const std::vector<HotPage> &
    hotPlan(ServerId server, int day) const;

    void emitHotRequests(ServerId server, int day,
                         std::vector<Request> &out) const;
    void emitColdRequests(ServerId server, int day,
                          std::vector<Request> &out) const;

    /** Sample an issue time inside the day's window. */
    util::TimeUs sampleTime(const std::vector<double> &minute_weights,
                            util::TimeUs begin, util::TimeUs end,
                            util::Rng &rng) const;

    /**
     * Build per-minute intensity weights for a server-day. Bursts are
     * applied only to the cold/scan schedule (with_bursts): hot-block
     * traffic follows the smooth diurnal curve, while scans arrive in
     * bursts — which is what drives the unsieved caches' occupancy
     * peaks in Figure 8.
     */
    std::vector<double> minuteWeights(ServerId server, int day,
                                      util::Rng &rng,
                                      bool with_bursts) const;

    /** Synthesize a request latency for a given transfer size. */
    uint32_t sampleLatency(uint64_t bytes, util::Rng &rng) const;

    EnsembleConfig ensemble_;
    std::vector<ServerProfile> profiles;
    SyntheticConfig config_;

    /** hot_plans[day][server] -> hot pages with today's counts. */
    std::vector<std::vector<std::vector<HotPage>>> hot_plans;
    /** Per-server-day unique-block budget (blocks). */
    std::vector<std::vector<double>> unique_budget;

    // Streaming state for the TraceReader interface.
    mutable std::vector<Request> stream_buffer;
    mutable size_t stream_pos = 0;
    mutable int stream_day = 0;
};

} // namespace trace
} // namespace sievestore

#endif // SIEVESTORE_TRACE_SYNTHETIC_HPP
