#include "trace/merge.hpp"

namespace sievestore {
namespace trace {

MergedTrace::MergedTrace(std::vector<std::unique_ptr<TraceReader>> sources_)
    : sources(std::move(sources_))
{
}

void
MergedTrace::prime()
{
    for (size_t i = 0; i < sources.size(); ++i) {
        Request r;
        if (sources[i]->next(r))
            heap.push(HeapEntry{r, i});
    }
    primed = true;
}

bool
MergedTrace::next(Request &out)
{
    if (!primed)
        prime();
    if (heap.empty())
        return false;
    const HeapEntry top = heap.top();
    heap.pop();
    out = top.req;
    Request r;
    if (sources[top.source]->next(r))
        heap.push(HeapEntry{r, top.source});
    return true;
}

void
MergedTrace::reset()
{
    for (auto &s : sources)
        s->reset();
    heap = {};
    primed = false;
}

} // namespace trace
} // namespace sievestore
