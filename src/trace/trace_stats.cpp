#include "trace/trace_stats.hpp"

#include <unordered_set>

#include "trace/block.hpp"
#include "util/sim_time.hpp"

namespace sievestore {
namespace trace {

double
TraceStats::avgDailyUniqueBytes() const
{
    double sum = 0.0;
    int active = 0;
    for (const auto &d : days) {
        if (d.block_accesses == 0)
            continue;
        sum += static_cast<double>(d.unique_blocks) *
               static_cast<double>(kBlockBytes);
        ++active;
    }
    return active ? sum / active : 0.0;
}

TraceStats
summarizeTrace(TraceReader &reader)
{
    TraceStats stats;
    std::unordered_set<BlockId> uniq;
    size_t current_day = 0;

    Request req;
    while (reader.next(req)) {
        const size_t day = util::dayOf(req.time);
        if (day >= stats.days.size())
            stats.days.resize(day + 1);
        if (day != current_day) {
            // Requests arrive time-sorted, so a day change is final.
            uniq.clear();
            current_day = day;
        }
        DayStats &ds = stats.days[day];
        ++ds.requests;
        ds.block_accesses += req.length_blocks;
        ds.bytes += req.bytes();
        if (req.op == Op::Read)
            ds.read_accesses += req.length_blocks;
        if (req.offset_blocks % kBlocksPerPage == 0 &&
            req.length_blocks % kBlocksPerPage == 0) {
            ++ds.aligned_requests;
        }
        for (uint32_t i = 0; i < req.length_blocks; ++i)
            uniq.insert(req.blockAt(i));
        ds.unique_blocks = uniq.size();

        ++stats.total_requests;
        stats.total_block_accesses += req.length_blocks;
        stats.total_bytes += req.bytes();
    }
    return stats;
}

} // namespace trace
} // namespace sievestore
