/**
 * @file
 * Storage-ensemble metadata.
 *
 * Mirrors Table 1 of the paper: 13 servers, 36 volumes, 179 spindles,
 * 6449 GB. The synthetic generator, the per-server simulators, and the
 * Table 1 bench all consume this description; a custom ensemble can be
 * described with the same structures.
 */

#ifndef SIEVESTORE_TRACE_ENSEMBLE_HPP
#define SIEVESTORE_TRACE_ENSEMBLE_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "trace/block.hpp"

namespace sievestore {
namespace trace {

/** One storage volume (a LUN exported by a server). */
struct VolumeInfo
{
    /** Global volume index (key into BlockId). */
    VolumeId id = 0;
    /** Owning server. */
    ServerId server = 0;
    /** Index of the volume within its server (0-based). */
    uint16_t index_in_server = 0;
    /** Capacity in 512-byte blocks. */
    uint64_t capacity_blocks = 0;

    uint64_t capacityBytes() const { return capacity_blocks * kBlockBytes; }
};

/** One traced server. */
struct ServerInfo
{
    ServerId id = 0;
    /** Short key used in the paper ("Usr", "Prxy", ...). */
    std::string key;
    /** Descriptive name ("User home dirs", ...). */
    std::string name;
    /** Number of volumes. */
    uint16_t volumes = 0;
    /** Number of HDD spindles behind the server (Table 1). */
    uint16_t spindles = 0;
    /** Total capacity in GB (Table 1, decimal GB). */
    uint64_t size_gb = 0;
    /** Global ids of this server's volumes. */
    std::vector<VolumeId> volume_ids;
};

/**
 * A described storage ensemble: servers and their volumes with global
 * volume numbering.
 */
class EnsembleConfig
{
  public:
    /** Build an empty ensemble; add servers with addServer(). */
    EnsembleConfig() = default;

    /**
     * Append a server with `volumes` equally-sized volumes totalling
     * `size_gb` decimal gigabytes.
     * @return the new server's id
     */
    ServerId addServer(const std::string &key, const std::string &name,
                       uint16_t volumes, uint16_t spindles,
                       uint64_t size_gb);

    const std::vector<ServerInfo> &servers() const { return servers_; }
    const std::vector<VolumeInfo> &volumes() const { return volumes_; }

    const ServerInfo &server(ServerId id) const;
    const VolumeInfo &volume(VolumeId id) const;

    /** Find a server by its short key; fatal() if absent. */
    const ServerInfo &serverByKey(const std::string &key) const;

    size_t serverCount() const { return servers_.size(); }
    size_t volumeCount() const { return volumes_.size(); }

    /** Sum of server capacities in GB. */
    uint64_t totalSizeGb() const;
    /** Sum of server spindle counts. */
    uint64_t totalSpindles() const;

    /**
     * The 13-server ensemble of Table 1 (Usr, Proj, Prn, Hm, Rsrch,
     * Prxy, Src1, Src2, Stg, Ts, Web, Mds, Wdev).
     */
    static EnsembleConfig paperEnsemble();

  private:
    std::vector<ServerInfo> servers_;
    std::vector<VolumeInfo> volumes_;
};

} // namespace trace
} // namespace sievestore

#endif // SIEVESTORE_TRACE_ENSEMBLE_HPP
