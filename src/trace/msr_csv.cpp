#include "trace/msr_csv.hpp"

#include "util/logging.hpp"
#include "util/string_util.hpp"

namespace sievestore {
namespace trace {

MsrCsvReader::MsrCsvReader(const std::string &path_,
                           const EnsembleConfig &ensemble_,
                           uint64_t origin_ticks)
    : path(path_), ensemble(ensemble_), in(path_), origin(origin_ticks),
      origin_fixed(origin_ticks != 0)
{
    if (!in)
        util::fatal("cannot open MSR trace file '%s'", path.c_str());
    for (const auto &srv : ensemble.servers())
        host_map[util::toLower(srv.key)] = srv.id;
    warned_hosts.assign(ensemble.serverCount() + 1, false);
}

bool
MsrCsvReader::parseLine(const std::string &line, Request &out)
{
    const auto fields = util::splitView(line, ',');
    if (fields.size() != 7)
        util::fatal("%s: expected 7 CSV fields, got %zu in line '%s'",
                    path.c_str(), fields.size(), line.c_str());

    uint64_t ticks = 0, offset = 0, size = 0, duration = 0;
    if (!util::parseU64(fields[0], ticks))
        util::fatal("%s: bad timestamp '%s'", path.c_str(),
                    std::string(fields[0]).c_str());
    const std::string host = util::toLower(util::trimView(fields[1]));
    uint64_t disk = 0;
    if (!util::parseU64(fields[2], disk))
        util::fatal("%s: bad disk index '%s'", path.c_str(),
                    std::string(fields[2]).c_str());
    const std::string type = util::toLower(util::trimView(fields[3]));
    if (!util::parseU64(fields[4], offset) ||
        !util::parseU64(fields[5], size) ||
        !util::parseU64(fields[6], duration)) {
        util::fatal("%s: bad offset/size/duration in line '%s'",
                    path.c_str(), line.c_str());
    }

    const auto it = host_map.find(host);
    if (it == host_map.end()) {
        if (!warned_hosts.back()) {
            util::warn("%s: skipping records for unknown host '%s'",
                       path.c_str(), host.c_str());
            warned_hosts.back() = true;
        }
        ++skipped_records;
        return false;
    }
    const ServerInfo &srv = ensemble.server(it->second);
    if (disk >= srv.volume_ids.size()) {
        if (!warned_hosts[srv.id]) {
            util::warn("%s: host '%s' disk %llu outside ensemble config; "
                       "skipping", path.c_str(), host.c_str(),
                       static_cast<unsigned long long>(disk));
            warned_hosts[srv.id] = true;
        }
        ++skipped_records;
        return false;
    }

    if (!origin_fixed) {
        // Calendar midnight preceding the first record, so calendar-day
        // analysis matches the paper's partitioning.
        origin = (ticks / kTicksPerDay) * kTicksPerDay;
        origin_fixed = true;
    }
    if (ticks < origin)
        util::fatal("%s: timestamp before trace origin", path.c_str());

    out.time = (ticks - origin) / kTicksPerUs;
    out.volume = srv.volume_ids[disk];
    out.server = srv.id;
    out.op = (type == "write" || type == "w") ? Op::Write : Op::Read;
    out.offset_blocks = offset / kBlockBytes;
    // A request that touches any byte of a block accesses the block.
    const uint64_t end_byte = offset + (size == 0 ? 1 : size);
    const uint64_t end_block = (end_byte + kBlockBytes - 1) / kBlockBytes;
    out.length_blocks =
        static_cast<uint32_t>(end_block - out.offset_blocks);
    out.latency_us = static_cast<uint32_t>(duration / kTicksPerUs);
    return true;
}

bool
MsrCsvReader::next(Request &out)
{
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        if (parseLine(line, out))
            return true;
    }
    return false;
}

void
MsrCsvReader::reset()
{
    in.clear();
    in.seekg(0);
    if (!in)
        util::fatal("cannot rewind MSR trace file '%s'", path.c_str());
    skipped_records = 0;
}

MsrCsvWriter::MsrCsvWriter(const std::string &path,
                           const EnsembleConfig &ensemble_,
                           uint64_t origin_ticks)
    : ensemble(ensemble_), out(path), origin(origin_ticks)
{
    if (!out)
        util::fatal("cannot create MSR trace file '%s'", path.c_str());
}

void
MsrCsvWriter::write(const Request &req)
{
    const ServerInfo &srv = ensemble.server(req.server);
    const VolumeInfo &vol = ensemble.volume(req.volume);
    const uint64_t ticks = origin + req.time * kTicksPerUs;
    out << ticks << ',' << util::toLower(srv.key) << ','
        << vol.index_in_server << ','
        << (req.op == Op::Write ? "Write" : "Read") << ','
        << req.offset_blocks * kBlockBytes << ',' << req.bytes() << ','
        << uint64_t(req.latency_us) * kTicksPerUs << '\n';
    ++count;
}

void
MsrCsvWriter::close()
{
    out.close();
}

} // namespace trace
} // namespace sievestore
