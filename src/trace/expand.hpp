/**
 * @file
 * Request-to-block expansion with completion-time interpolation.
 *
 * The cache simulator consumes individual 512-byte BlockAccesses. A
 * multi-block request is expanded into one access per block; each block's
 * completion time is linearly interpolated between the request's issue
 * and completion times (Section 4 of the paper). Allocation of a missed
 * block can only start once its data has been fetched, i.e. at the
 * interpolated completion time.
 */

#ifndef SIEVESTORE_TRACE_EXPAND_HPP
#define SIEVESTORE_TRACE_EXPAND_HPP

#include <vector>

#include "trace/request.hpp"
#include "trace/trace_reader.hpp"

namespace sievestore {
namespace trace {

/**
 * Interpolated completion time of block i (0-based) of a request
 * covering n blocks: issue + (i+1)/n of the latency, so the last block
 * completes exactly at the request's completion time.
 */
util::TimeUs interpolatedCompletion(const Request &req, uint32_t i);

/** Expand a request, appending one BlockAccess per covered block. */
void expandRequest(const Request &req, std::vector<BlockAccess> &out);

/**
 * Streaming expansion adapter: pulls requests from a reader and yields
 * BlockAccesses one at a time without materializing the expansion.
 */
class BlockAccessStream
{
  public:
    explicit BlockAccessStream(TraceReader &reader);

    /** @retval true an access was produced; false at end of trace. */
    bool next(BlockAccess &out);

    /** Restart from the beginning of the underlying trace. */
    void reset();

    /** Requests consumed so far. */
    uint64_t requests() const { return req_count; }
    /** Block accesses produced so far. */
    uint64_t accesses() const { return access_count; }

  private:
    TraceReader &reader;
    Request current;
    uint32_t index = 0;
    bool have_request = false;
    uint64_t req_count = 0;
    uint64_t access_count = 0;
};

} // namespace trace
} // namespace sievestore

#endif // SIEVESTORE_TRACE_EXPAND_HPP
