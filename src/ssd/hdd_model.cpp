#include "ssd/hdd_model.hpp"

#include "util/logging.hpp"

namespace sievestore {
namespace ssd {

HddModel
HddModel::enterprise15k()
{
    HddModel m;
    m.iops = 300.0;
    m.seq_bw = 125.0e6;
    return m;
}

double
serviceTimeSpeedup(const HddModel &hdd, const SsdModel &ssd,
                   double hit_ratio, double read_frac)
{
    if (hit_ratio < 0.0 || hit_ratio > 1.0)
        util::fatal("hit ratio must be in [0, 1]");
    if (read_frac < 0.0 || read_frac > 1.0)
        util::fatal("read fraction must be in [0, 1]");

    const double hdd_service = hdd.service();
    const double ssd_service = read_frac * ssd.readService() +
                               (1.0 - read_frac) * ssd.writeService();
    const double without = hdd_service;
    const double with = hit_ratio * ssd_service +
                        (1.0 - hit_ratio) * hdd_service;
    return without / with;
}

} // namespace ssd
} // namespace sievestore
