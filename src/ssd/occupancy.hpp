/**
 * @file
 * Per-minute drive-IOPS occupancy accounting (Section 4, Figures 8/9).
 *
 * "We compute a Drive IOPS occupancy metric for each minute in the
 * trace. We assume that each 4KB read I/O occupies the drive for
 * 1/35000th of a second and each 4KB write I/O occupies the drive for
 * 1/3300th of a second. The number of drives needed each minute is
 * computed as the ceiling of the drive occupancy of all requests for
 * that minute."
 *
 * Sub-4 KB I/Os are charged as full 4 KB I/Os, the paper's conservative
 * approximation for the ~6 % of unaligned accesses.
 */

#ifndef SIEVESTORE_SSD_OCCUPANCY_HPP
#define SIEVESTORE_SSD_OCCUPANCY_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ssd/ssd_model.hpp"
#include "util/sim_time.hpp"

namespace sievestore {
namespace ssd {

/** Raw 4 KB I/O tallies for one minute of the trace. */
struct MinuteLoad
{
    uint64_t read_ios = 0;
    uint64_t write_ios = 0;
};

/** Accumulates SSD I/Os into a per-minute occupancy series. */
class DriveOccupancyTracker
{
  public:
    explicit DriveOccupancyTracker(SsdModel model);

    /** Record `pages` 4 KB read I/Os at time t. */
    void recordReads(util::TimeUs t, uint64_t pages);
    /** Record `pages` 4 KB write I/Os at time t. */
    void recordWrites(util::TimeUs t, uint64_t pages);

    /** Per-minute raw tallies (index = minute since trace origin). */
    const std::vector<MinuteLoad> &minutes() const { return loads; }

    /**
     * Occupancy of minute m: drive-seconds of service demanded divided
     * by the 60 s available, i.e. the (fractional) number of drives
     * needed to serve that minute's I/O with no queueing.
     */
    double occupancy(size_t minute) const;

    /** Occupancy for every minute, in chronological order. */
    std::vector<double> occupancySeries() const;

    /** ceil(occupancy) for every minute; 0 for idle minutes. */
    std::vector<uint32_t> drivesSeries() const;

    /**
     * Smallest drive count d such that at least `coverage` of minutes
     * need <= d drives (Figure 9's coverage dilution). Minutes before
     * the first and after the last recorded I/O are excluded, matching
     * the paper's 10,080-minute trace window.
     * @param coverage in (0, 1]
     */
    uint32_t drivesForCoverage(double coverage) const;

    /** Maximum drives needed in any minute (100 % coverage). */
    uint32_t maxDrives() const;

    /** Fraction of minutes needing at most `drives` drives. */
    double coverageWithDrives(uint32_t drives) const;

    /** Total 4 KB I/Os recorded. */
    uint64_t totalReadIos() const { return total_reads; }
    uint64_t totalWriteIos() const { return total_writes; }

    /** Total bytes written (4 KB per write I/O), for endurance math. */
    uint64_t bytesWritten() const { return total_writes * 4096ULL; }

    const SsdModel &model() const { return ssd; }

  private:
    void ensureMinute(size_t minute);

    SsdModel ssd;
    std::vector<MinuteLoad> loads;
    uint64_t total_reads = 0;
    uint64_t total_writes = 0;
};

/**
 * Years the SSD will last given its endurance rating and an observed
 * write volume over a trace of `trace_days` days (Section 5.1: "the
 * disk's endurance is over 10 years").
 */
double enduranceYears(const SsdModel &model, uint64_t bytes_written,
                      double trace_days);

} // namespace ssd
} // namespace sievestore

#endif // SIEVESTORE_SSD_OCCUPANCY_HPP
