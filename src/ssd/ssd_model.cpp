#include "ssd/ssd_model.hpp"

namespace sievestore {
namespace ssd {

SsdModel
SsdModel::scaled(double factor) const
{
    SsdModel m = *this;
    m.read_iops *= factor;
    m.write_iops *= factor;
    m.seq_read_bw *= factor;
    m.seq_write_bw *= factor;
    m.endurance_bytes *= factor;
    m.capacity_bytes = static_cast<uint64_t>(
        static_cast<double>(m.capacity_bytes) * factor);
    return m;
}

SsdModel
SsdModel::intelX25E(uint64_t capacity_bytes)
{
    SsdModel m;
    m.read_iops = 35000.0;
    m.write_iops = 3300.0;
    m.seq_read_bw = 250.0e6;
    m.seq_write_bw = 170.0e6;
    m.capacity_bytes = capacity_bytes;
    m.endurance_bytes = 1.0e15;
    return m;
}

} // namespace ssd
} // namespace sievestore
