/**
 * @file
 * Enterprise HDD model and end-to-end service-time estimation.
 *
 * The paper's motivation is that SSD IOPS are "two orders of magnitude
 * higher for reads and one order of magnitude higher for writes when
 * compared to HDDs" (Section 5.2). This model quantifies what the
 * cache's hit ratio buys the ensemble: the average block-service time
 * with and without the appliance, given the spindle counts of Table 1.
 */

#ifndef SIEVESTORE_SSD_HDD_MODEL_HPP
#define SIEVESTORE_SSD_HDD_MODEL_HPP

#include <cstdint>

#include "ssd/ssd_model.hpp"

namespace sievestore {
namespace ssd {

/** Analytical HDD parameters (per spindle). */
struct HddModel
{
    /** Random 4 KB IOPS per spindle. */
    double iops = 0.0;
    /** Sustained sequential bandwidth, bytes/s. */
    double seq_bw = 0.0;

    /** Seconds of spindle occupancy per random 4 KB I/O. */
    double service() const { return 1.0 / iops; }

    /**
     * A 15k-RPM enterprise drive of the paper's era: ~300 random IOPS
     * (3.3 ms average positioning+rotation), ~125 MB/s sequential.
     */
    static HddModel enterprise15k();
};

/**
 * Average random-I/O service-time improvement from serving `hit_ratio`
 * of accesses at SSD speed instead of HDD speed.
 *
 * @param hdd        backing-store drive model
 * @param ssd        cache drive model
 * @param hit_ratio  fraction of accesses served by the SSD
 * @param read_frac  read fraction (reads and writes differ on the SSD)
 * @return mean service time without cache / mean with cache (>= 1)
 */
double serviceTimeSpeedup(const HddModel &hdd, const SsdModel &ssd,
                          double hit_ratio, double read_frac = 0.75);

} // namespace ssd
} // namespace sievestore

#endif // SIEVESTORE_SSD_HDD_MODEL_HPP
