/**
 * @file
 * Analytical SSD device model (Section 4).
 *
 * The paper's cost evaluation never executes on hardware; it charges
 * each 4 KB read 1/35000 s and each 4 KB write 1/3300 s of drive
 * occupancy (Intel X25-E Extreme data-sheet numbers) and takes the
 * per-minute ceiling as the drives needed that minute. This model
 * implements the same arithmetic, plus the data-sheet endurance used for
 * the wearout argument in Section 5.1.
 *
 * When a scaled-down synthetic trace is used, scale the IOPS ratings by
 * the same factor (scaled()) so occupancy keeps its shape.
 */

#ifndef SIEVESTORE_SSD_SSD_MODEL_HPP
#define SIEVESTORE_SSD_SSD_MODEL_HPP

#include <cstdint>

namespace sievestore {
namespace ssd {

/** Device parameters; defaults are zeroed, use a preset. */
struct SsdModel
{
    /** Random 4 KB read IOPS. */
    double read_iops = 0.0;
    /** Random 4 KB write IOPS. */
    double write_iops = 0.0;
    /** Sustained sequential read bandwidth, bytes/s. */
    double seq_read_bw = 0.0;
    /** Sustained sequential write bandwidth, bytes/s. */
    double seq_write_bw = 0.0;
    /** Usable capacity in bytes. */
    uint64_t capacity_bytes = 0;
    /** Total write endurance in bytes (data-sheet). */
    double endurance_bytes = 0.0;

    /** Drive-seconds consumed by one 4 KB random read. */
    double readService() const { return 1.0 / read_iops; }
    /** Drive-seconds consumed by one 4 KB random write. */
    double writeService() const { return 1.0 / write_iops; }

    /**
     * Random-access bandwidth implied by the IOPS ratings at 4 KB
     * transfers; the paper notes this is the tighter constraint, so
     * occupancy is assessed against IOPS, not sequential bandwidth.
     */
    double randomReadBw() const { return read_iops * 4096.0; }
    double randomWriteBw() const { return write_iops * 4096.0; }

    /**
     * The model with throughput ratings multiplied by `factor`; used to
     * pair a 1/N-volume synthetic trace with a 1/N-rate device so the
     * drives-needed series keeps its shape.
     */
    SsdModel scaled(double factor) const;

    /**
     * Intel X25-E Extreme SATA SSD [8]: 35,000 random-read IOPS, 3,300
     * random-write IOPS, 250 MB/s / 170 MB/s sequential, 1 PB write
     * endurance. The paper evaluates 16 GB and 32 GB cache capacities.
     */
    static SsdModel intelX25E(uint64_t capacity_bytes = 32ULL << 30);
};

} // namespace ssd
} // namespace sievestore

#endif // SIEVESTORE_SSD_SSD_MODEL_HPP
