#include "ssd/occupancy.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.hpp"
#include "util/logging.hpp"

namespace sievestore {
namespace ssd {

DriveOccupancyTracker::DriveOccupancyTracker(SsdModel model)
    : ssd(model)
{
    if (ssd.read_iops <= 0.0 || ssd.write_iops <= 0.0)
        util::fatal("occupancy tracker requires positive IOPS ratings");
}

// SIEVE_MAY_ALLOC: per-minute load buckets grow amortized, once per
// simulated minute. A configured occupancy tracker makes
// Appliance::flatEnginesOnly() false, so the batch-level no-alloc
// region never arms over this path.
void SIEVE_MAY_ALLOC
DriveOccupancyTracker::ensureMinute(size_t minute)
{
    if (minute >= loads.size())
        loads.resize(minute + 1);
}

void
DriveOccupancyTracker::recordReads(util::TimeUs t, uint64_t pages)
{
    if (pages == 0)
        return;
    const size_t minute = util::minuteOf(t);
    ensureMinute(minute);
    loads[minute].read_ios += pages;
    total_reads += pages;
}

void
DriveOccupancyTracker::recordWrites(util::TimeUs t, uint64_t pages)
{
    if (pages == 0)
        return;
    const size_t minute = util::minuteOf(t);
    ensureMinute(minute);
    loads[minute].write_ios += pages;
    total_writes += pages;
}

double
DriveOccupancyTracker::occupancy(size_t minute) const
{
    if (minute >= loads.size())
        return 0.0;
    const MinuteLoad &l = loads[minute];
    const double service =
        static_cast<double>(l.read_ios) * ssd.readService() +
        static_cast<double>(l.write_ios) * ssd.writeService();
    return service / 60.0;
}

std::vector<double>
DriveOccupancyTracker::occupancySeries() const
{
    std::vector<double> out(loads.size());
    for (size_t m = 0; m < loads.size(); ++m)
        out[m] = occupancy(m);
    return out;
}

std::vector<uint32_t>
DriveOccupancyTracker::drivesSeries() const
{
    std::vector<uint32_t> out(loads.size());
    for (size_t m = 0; m < loads.size(); ++m)
        out[m] = static_cast<uint32_t>(std::ceil(occupancy(m)));
    return out;
}

uint32_t
DriveOccupancyTracker::drivesForCoverage(double coverage) const
{
    if (coverage <= 0.0 || coverage > 1.0)
        util::fatal("coverage must be in (0, 1], got %f", coverage);
    std::vector<uint32_t> drives = drivesSeries();
    if (drives.empty())
        return 0;
    std::sort(drives.begin(), drives.end());
    const double n = static_cast<double>(drives.size());
    size_t rank = static_cast<size_t>(std::ceil(coverage * n));
    if (rank == 0)
        rank = 1;
    return drives[rank - 1];
}

uint32_t
DriveOccupancyTracker::maxDrives() const
{
    uint32_t best = 0;
    for (size_t m = 0; m < loads.size(); ++m)
        best = std::max(best,
                        static_cast<uint32_t>(std::ceil(occupancy(m))));
    return best;
}

double
DriveOccupancyTracker::coverageWithDrives(uint32_t drives) const
{
    if (loads.empty())
        return 1.0;
    size_t ok = 0;
    for (size_t m = 0; m < loads.size(); ++m)
        if (std::ceil(occupancy(m)) <= static_cast<double>(drives))
            ++ok;
    return static_cast<double>(ok) / static_cast<double>(loads.size());
}

double
enduranceYears(const SsdModel &model, uint64_t bytes_written,
               double trace_days)
{
    if (trace_days <= 0.0 || bytes_written == 0)
        return std::numeric_limits<double>::infinity();
    const double per_day =
        static_cast<double>(bytes_written) / trace_days;
    return model.endurance_bytes / (per_day * 365.0);
}

} // namespace ssd
} // namespace sievestore
