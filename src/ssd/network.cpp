#include "ssd/network.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace sievestore {
namespace ssd {

NetworkFeasibility
checkNetworkFeasibility(const DriveOccupancyTracker &occupancy,
                        const NetworkModel &nic)
{
    if (nic.links == 0 || nic.link_bps <= 0.0)
        util::fatal("network model requires at least one live link");

    NetworkFeasibility result;
    const double budget_per_minute = nic.bytesPerSecond() * 60.0;
    result.worst_case_bound =
        occupancy.model().seq_read_bw / nic.bytesPerSecond();

    const auto &minutes = occupancy.minutes();
    if (minutes.empty())
        return result;

    double sum = 0.0;
    uint64_t within = 0;
    for (const MinuteLoad &m : minutes) {
        const double bytes =
            static_cast<double>(m.read_ios + m.write_ios) * 4096.0;
        const double util = bytes / budget_per_minute;
        sum += util;
        result.peak_utilization =
            std::max(result.peak_utilization, util);
        if (util <= 1.0)
            ++within;
    }
    result.mean_utilization = sum / static_cast<double>(minutes.size());
    result.coverage = static_cast<double>(within) /
                      static_cast<double>(minutes.size());
    return result;
}

} // namespace ssd
} // namespace sievestore
