/**
 * @file
 * Appliance network-feasibility analysis (Section 3.3,
 * "Implementation").
 *
 * The paper's appliance concern: "there is concern that the SieveStore
 * node could become a network bottleneck. There are two sources of
 * network traffic; SSD hits wherein blocks are served from the
 * SieveStore node and the allocated-misses wherein blocks are copied to
 * the SieveStore node." Its worst-case arithmetic: a reasonably
 * configured node has four Gigabit Ethernet links, and even the SSD's
 * maximum sequential read rate (250 MB/s) is only ~50 % of that NIC
 * budget. This model reruns the check against the *measured* per-minute
 * I/O of a simulation instead of the worst case.
 */

#ifndef SIEVESTORE_SSD_NETWORK_HPP
#define SIEVESTORE_SSD_NETWORK_HPP

#include <cstdint>

#include "ssd/occupancy.hpp"

namespace sievestore {
namespace ssd {

/** Appliance NIC configuration. */
struct NetworkModel
{
    /** Number of links. */
    uint32_t links = 4;
    /** Line rate per link, bits/s. */
    double link_bps = 1.0e9;

    /** Usable bytes/s across all links. */
    double
    bytesPerSecond() const
    {
        return static_cast<double>(links) * link_bps / 8.0;
    }

    /** The paper's "reasonably configured node": 4x GbE. */
    static NetworkModel
    fourGigabitLinks()
    {
        return NetworkModel{};
    }
};

/** Result of the feasibility check. */
struct NetworkFeasibility
{
    /** Mean network utilization over active minutes, in [0, ...). */
    double mean_utilization = 0.0;
    /** Peak per-minute utilization. */
    double peak_utilization = 0.0;
    /** Fraction of minutes within the NIC budget (utilization <= 1). */
    double coverage = 1.0;
    /** The paper's worst-case bound: SSD max sequential read rate as a
     * fraction of the NIC budget (~0.5 for X25-E on 4x GbE). */
    double worst_case_bound = 0.0;
};

/**
 * Check an appliance's measured traffic against a NIC configuration.
 * Every SSD I/O crosses the network once (hits served out,
 * allocation data copied in), at 4 KB per I/O.
 */
NetworkFeasibility
checkNetworkFeasibility(const DriveOccupancyTracker &occupancy,
                        const NetworkModel &nic);

} // namespace ssd
} // namespace sievestore

#endif // SIEVESTORE_SSD_NETWORK_HPP
