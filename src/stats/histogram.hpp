/**
 * @file
 * Histograms and empirical-distribution helpers.
 *
 * The popularity-skew analysis (Figures 2 and 3) and the drive-occupancy
 * coverage analysis (Figure 9) both reduce large sample sets to
 * percentile/CDF views; these classes provide the shared machinery.
 */

#ifndef SIEVESTORE_STATS_HISTOGRAM_HPP
#define SIEVESTORE_STATS_HISTOGRAM_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

namespace sievestore {
namespace stats {

/**
 * Fixed-width linear histogram over [lo, hi) with out-of-range samples
 * clamped into the first/last bucket.
 */
class LinearHistogram
{
  public:
    /**
     * @param lo      inclusive lower bound
     * @param hi      exclusive upper bound (> lo)
     * @param buckets number of buckets (>= 1)
     */
    LinearHistogram(double lo, double hi, size_t buckets);

    /** Record one sample. */
    void add(double value);

    /** Number of samples recorded. */
    uint64_t count() const { return total; }

    /** Sample count in bucket i. */
    uint64_t bucketCount(size_t i) const { return counts.at(i); }

    /** Inclusive lower edge of bucket i. */
    double bucketLow(size_t i) const;

    size_t buckets() const { return counts.size(); }

    /**
     * Smallest value v such that at least `fraction` of samples are
     * <= v, resolved to a bucket upper edge. @pre 0 <= fraction <= 1 and
     * count() > 0.
     */
    double percentile(double fraction) const;

  private:
    double lo;
    double width;
    std::vector<uint64_t> counts;
    uint64_t total = 0;
};

/**
 * Power-of-two bucketed histogram of non-negative integers: bucket 0
 * holds value 0, bucket i >= 1 holds values in [2^(i-1), 2^i). Used for
 * access-count distributions whose range spans many decades
 * (Figure 2(a)).
 */
class Log2Histogram
{
  public:
    void add(uint64_t value);

    uint64_t count() const { return total; }

    /** Number of occupied buckets (highest bucket index + 1). */
    size_t buckets() const { return counts.size(); }

    uint64_t bucketCount(size_t i) const;

    /** Inclusive lower bound of bucket i. */
    static uint64_t bucketLow(size_t i);

    /** Mean of recorded values. @pre count() > 0. */
    double mean() const;

  private:
    std::vector<uint64_t> counts;
    uint64_t total = 0;
    double sum = 0.0;
};

/**
 * Exact empirical distribution: retains all samples; supports exact
 * percentiles and CDF evaluation. Appropriate for per-minute series
 * (10k points) and per-bin summaries, not raw per-access data.
 */
class EmpiricalDistribution
{
  public:
    void add(double value);

    uint64_t count() const { return samples.size(); }
    double min() const;
    double max() const;
    double mean() const;

    /**
     * Exact percentile by the nearest-rank method.
     * @param fraction in [0, 1]; 0 gives min, 1 gives max.
     * @pre count() > 0
     */
    double percentile(double fraction) const;

    /** Fraction of samples <= value. */
    double cdf(double value) const;

    /** Sorted copy of the samples. */
    const std::vector<double> &sorted() const;

  private:
    void ensureSorted() const;

    mutable std::vector<double> samples;
    mutable bool sortedFlag = true;
};

} // namespace stats
} // namespace sievestore

#endif // SIEVESTORE_STATS_HISTOGRAM_HPP
