#include "stats/table.hpp"

#include <algorithm>
#include <cstdio>

#include "util/logging.hpp"
#include "util/string_util.hpp"

namespace sievestore {
namespace stats {

Table::Table(std::vector<std::string> headers_)
    : headers(std::move(headers_))
{
    if (headers.empty())
        util::fatal("Table requires at least one column");
}

Table &
Table::row()
{
    if (!body.empty() && body.back().size() != headers.size())
        util::panic("Table row finished with %zu cells, expected %zu",
                    body.back().size(), headers.size());
    body.emplace_back();
    body.back().reserve(headers.size());
    return *this;
}

Table &
Table::cell(std::string value)
{
    if (body.empty())
        util::panic("Table::cell called before Table::row");
    if (body.back().size() >= headers.size())
        util::panic("Table row overflow: more cells than columns");
    body.back().push_back(std::move(value));
    return *this;
}

Table &
Table::cell(const char *value)
{
    return cell(std::string(value));
}

Table &
Table::cell(uint64_t value)
{
    return cell(util::formatCount(value));
}

Table &
Table::cell(int64_t value)
{
    if (value < 0)
        return cell("-" + util::formatCount(
                              static_cast<uint64_t>(-value)));
    return cell(util::formatCount(static_cast<uint64_t>(value)));
}

Table &
Table::cell(double value, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    return cell(std::string(buf));
}

Table &
Table::cellPercent(double fraction, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
    return cell(std::string(buf));
}

void
Table::print(std::ostream &os) const
{
    std::vector<size_t> widths(headers.size());
    for (size_t c = 0; c < headers.size(); ++c)
        widths[c] = headers[c].size();
    for (const auto &r : body)
        for (size_t c = 0; c < r.size(); ++c)
            widths[c] = std::max(widths[c], r[c].size());

    auto emitRow = [&](const std::vector<std::string> &cells) {
        for (size_t c = 0; c < headers.size(); ++c) {
            const std::string &v = c < cells.size() ? cells[c] : "";
            os << (c == 0 ? "" : "  ");
            // Left-align the first column (labels), right-align the rest
            // (numbers).
            if (c == 0) {
                os << v << std::string(widths[c] - v.size(), ' ');
            } else {
                os << std::string(widths[c] - v.size(), ' ') << v;
            }
        }
        os << '\n';
    };

    emitRow(headers);
    size_t rule = 0;
    for (size_t c = 0; c < widths.size(); ++c)
        rule += widths[c] + (c == 0 ? 0 : 2);
    os << std::string(rule, '-') << '\n';
    for (const auto &r : body)
        emitRow(r);
}

void
Table::printCsv(std::ostream &os) const
{
    auto quote = [](const std::string &v) {
        if (v.find_first_of(",\"\n") == std::string::npos)
            return v;
        std::string out = "\"";
        for (char ch : v) {
            if (ch == '"')
                out += "\"\"";
            else
                out.push_back(ch);
        }
        out.push_back('"');
        return out;
    };
    auto emitRow = [&](const std::vector<std::string> &cells) {
        for (size_t c = 0; c < cells.size(); ++c)
            os << (c == 0 ? "" : ",") << quote(cells[c]);
        os << '\n';
    };
    emitRow(headers);
    for (const auto &r : body)
        emitRow(r);
}

void
Table::printJson(std::ostream &os) const
{
    auto quote = [&](const std::string &v) {
        os << '"';
        for (const char ch : v) {
            switch (ch) {
              case '"':
                os << "\\\"";
                break;
              case '\\':
                os << "\\\\";
                break;
              case '\n':
                os << "\\n";
                break;
              default:
                if (static_cast<unsigned char>(ch) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
                    os << buf;
                } else {
                    os << ch;
                }
            }
        }
        os << '"';
    };
    os << "[\n";
    for (size_t r = 0; r < body.size(); ++r) {
        os << "  {";
        for (size_t c = 0; c < body[r].size(); ++c) {
            if (c)
                os << ", ";
            quote(headers[c]);
            os << ": ";
            quote(body[r][c]);
        }
        os << (r + 1 < body.size() ? "},\n" : "}\n");
    }
    os << "]\n";
}

} // namespace stats
} // namespace sievestore
