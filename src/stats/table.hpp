/**
 * @file
 * Formatted table output.
 *
 * Every benchmark harness regenerates one of the paper's tables or
 * figure-series as rows of text; Table centralizes alignment, numeric
 * formatting, and CSV export so all benches print uniformly.
 */

#ifndef SIEVESTORE_STATS_TABLE_HPP
#define SIEVESTORE_STATS_TABLE_HPP

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace sievestore {
namespace stats {

/**
 * A simple column-aligned text table. Cells are strings; numeric
 * convenience overloads format consistently (fixed precision for
 * doubles, thousands separators for counts).
 */
class Table
{
  public:
    /** @param headers column titles, defining the column count. */
    explicit Table(std::vector<std::string> headers);

    /** Begin a new row. Subsequent cell() calls fill it left to right. */
    Table &row();

    /** Append a string cell to the current row. */
    Table &cell(std::string value);
    /** Append a C-string cell to the current row. */
    Table &cell(const char *value);
    /** Append an unsigned count with thousands separators. */
    Table &cell(uint64_t value);
    /** Append a signed integer. */
    Table &cell(int64_t value);
    /** Append a double with the given number of decimal places. */
    Table &cell(double value, int precision = 3);
    /** Append a percentage ("42.7%") from a fraction in [0,1]. */
    Table &cellPercent(double fraction, int precision = 1);

    size_t rows() const { return body.size(); }
    size_t columns() const { return headers.size(); }

    /** Render aligned text with a header rule. */
    void print(std::ostream &os) const;

    /** Render as CSV (RFC-4180-style quoting for commas/quotes). */
    void printCsv(std::ostream &os) const;

    /**
     * Render as a JSON array of objects, one per row, keyed by the
     * column headers. Cells are emitted as JSON strings verbatim
     * (formatting such as thousands separators is preserved), so
     * downstream tooling gets the same values a human sees.
     */
    void printJson(std::ostream &os) const;

  private:
    std::vector<std::string> headers;
    std::vector<std::vector<std::string>> body;
};

} // namespace stats
} // namespace sievestore

#endif // SIEVESTORE_STATS_TABLE_HPP
