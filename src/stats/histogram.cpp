#include "stats/histogram.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "util/logging.hpp"

namespace sievestore {
namespace stats {

LinearHistogram::LinearHistogram(double lo_, double hi, size_t buckets)
    : lo(lo_)
{
    if (buckets == 0)
        util::fatal("LinearHistogram requires at least one bucket");
    if (!(hi > lo_))
        util::fatal("LinearHistogram requires hi > lo");
    width = (hi - lo_) / static_cast<double>(buckets);
    counts.assign(buckets, 0);
}

void
LinearHistogram::add(double value)
{
    double idx = (value - lo) / width;
    long i = static_cast<long>(std::floor(idx));
    if (i < 0)
        i = 0;
    if (i >= static_cast<long>(counts.size()))
        i = static_cast<long>(counts.size()) - 1;
    ++counts[static_cast<size_t>(i)];
    ++total;
}

double
LinearHistogram::bucketLow(size_t i) const
{
    return lo + width * static_cast<double>(i);
}

double
LinearHistogram::percentile(double fraction) const
{
    if (total == 0)
        util::panic("LinearHistogram::percentile on empty histogram");
    const double target = fraction * static_cast<double>(total);
    uint64_t cum = 0;
    for (size_t i = 0; i < counts.size(); ++i) {
        cum += counts[i];
        if (static_cast<double>(cum) >= target)
            return bucketLow(i) + width;
    }
    return bucketLow(counts.size() - 1) + width;
}

void
Log2Histogram::add(uint64_t value)
{
    const size_t bucket =
        value == 0 ? 0 : static_cast<size_t>(std::bit_width(value));
    if (bucket >= counts.size())
        counts.resize(bucket + 1, 0);
    ++counts[bucket];
    ++total;
    sum += static_cast<double>(value);
}

uint64_t
Log2Histogram::bucketCount(size_t i) const
{
    return i < counts.size() ? counts[i] : 0;
}

uint64_t
Log2Histogram::bucketLow(size_t i)
{
    return i == 0 ? 0 : (1ULL << (i - 1));
}

double
Log2Histogram::mean() const
{
    if (total == 0)
        util::panic("Log2Histogram::mean on empty histogram");
    return sum / static_cast<double>(total);
}

void
EmpiricalDistribution::add(double value)
{
    samples.push_back(value);
    sortedFlag = samples.size() <= 1;
}

void
EmpiricalDistribution::ensureSorted() const
{
    if (!sortedFlag) {
        std::sort(samples.begin(), samples.end());
        sortedFlag = true;
    }
}

double
EmpiricalDistribution::min() const
{
    ensureSorted();
    if (samples.empty())
        util::panic("EmpiricalDistribution::min on empty distribution");
    return samples.front();
}

double
EmpiricalDistribution::max() const
{
    ensureSorted();
    if (samples.empty())
        util::panic("EmpiricalDistribution::max on empty distribution");
    return samples.back();
}

double
EmpiricalDistribution::mean() const
{
    if (samples.empty())
        util::panic("EmpiricalDistribution::mean on empty distribution");
    double s = 0.0;
    for (double v : samples)
        s += v;
    return s / static_cast<double>(samples.size());
}

double
EmpiricalDistribution::percentile(double fraction) const
{
    ensureSorted();
    if (samples.empty())
        util::panic("EmpiricalDistribution::percentile on empty distribution");
    if (fraction <= 0.0)
        return samples.front();
    if (fraction >= 1.0)
        return samples.back();
    // Nearest-rank: smallest index r with (r+1)/n >= fraction.
    const double n = static_cast<double>(samples.size());
    size_t rank = static_cast<size_t>(std::ceil(fraction * n));
    if (rank == 0)
        rank = 1;
    return samples[rank - 1];
}

double
EmpiricalDistribution::cdf(double value) const
{
    ensureSorted();
    if (samples.empty())
        return 0.0;
    const auto it =
        std::upper_bound(samples.begin(), samples.end(), value);
    return static_cast<double>(it - samples.begin()) /
           static_cast<double>(samples.size());
}

const std::vector<double> &
EmpiricalDistribution::sorted() const
{
    ensureSorted();
    return samples;
}

} // namespace stats
} // namespace sievestore
